"""The asyncio front-end: admission control, batching, two listeners.

One process, one event loop, two listeners:

* the **query plane** (``asyncio.start_server``) speaks the NDJSON
  protocol of :mod:`repro.service.protocol` — requests on a connection
  are handled sequentially, so responses stay in order and concurrency
  comes from concurrent connections;
* the **ops plane** (a second listener on ``http_port``) speaks just
  enough HTTP/1.1 for ``GET /healthz`` (JSON liveness: version, worker
  PIDs, drain state), ``GET /metrics`` (Prometheus text exposition of
  the server's :class:`~repro.obs.metrics.MetricsRegistry`, latency
  histograms included), ``GET /debug/requests[/<trace_id>]`` (the
  flight recorder: recent/slowest trace summaries, or one full
  end-to-end span tree by trace id — see :mod:`repro.service.tracing`),
  and ``GET /debug/theories`` (per-registered-theory compile summaries:
  chosen strategy plus the strategy advisor's reasoning).

Admission control is a single bounded count: ``queue_limit`` caps jobs
that are admitted but not yet answered (queued *or* in flight on a
worker).  A request over the cap is refused immediately with an
``overloaded`` shed response — a structured partial per the protocol,
never a traceback, and never a silent hang: the server's job is to stay
responsive by refusing work, not to buffer unboundedly.  While draining
(SIGTERM) every new request sheds with ``draining`` while in-flight work
runs to completion.

Batching: admitted query jobs land in a pending list and a dispatcher
task drains it in one sweep, grouping jobs by theory content hash —
each group travels to one worker as a single batch, so the worker
resolves (or compiles) the theory once per batch rather than once per
request.  Under load the sweep naturally collects many requests; at low
load it degrades to batches of one with no added latency.

Worker results arrive on the pool's pump thread and are marshalled onto
the loop with ``call_soon_threadsafe``; per-job engine statistics
(registry hits, plan-cache traffic) are folded into the server metrics
under ``service.worker.*`` so ``/metrics`` shows cross-request warmth.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import signal
import time
from dataclasses import dataclass, field
from typing import Any, Optional

from .. import __version__
from ..robustness.errors import InternalError
from ..obs.metrics import MetricsRegistry
from ..obs.prometheus import render_exposition
from . import protocol
from .pool import NoLiveWorkers, PoolConfig, WorkerPool
from .registry import REQUESTABLE_STRATEGIES, content_hash
from .tracing import FlightRecorder, RequestTrace

#: One registered continuous query: the connection to push to, the
#: theory it watches, and the last answer set delivered (diff base).
@dataclass
class _Subscription:
    sub_id: int
    writer: asyncio.StreamWriter = field(repr=False)
    theory: str
    theory_text: str
    output: str
    answers: list = field(default_factory=list)

__all__ = ["ServiceConfig", "ReasoningServer", "serve"]

#: Per-job stat keys folded into the server's ``service.worker.*``
#: counters when a result arrives.
_WORKER_STAT_KEYS = (
    "registry_hits",
    "registry_misses",
    "registry_evictions",
    "advisor_predicted_chase",
    "advisor_fallbacks",
    "plan_cache_hits",
    "plan_compile_calls",
    "plan_cache_evictions",
    "materializations",
    "snapshot_loads",
    "snapshot_saves",
    "snapshot_errors",
    "updates",
    "incremental_updates",
    "incremental_inserted",
    "incremental_retracted",
    "incremental_derived_added",
    "incremental_derived_removed",
    "incremental_overdeleted",
    "incremental_rederived",
    "incremental_fallbacks",
)

#: Per-job stat keys that are absolute gauges (the worker's current
#: value replaces the server's), not deltas to accumulate.
_WORKER_GAUGE_KEYS = ("store_bytes", "store_symbols")


@dataclass
class ServiceConfig:
    """Everything ``repro serve`` can tune."""

    host: str = "127.0.0.1"
    port: int = 7464
    #: Ops (healthz/metrics) listener port; ``None`` → ``port + 1``.
    http_port: Optional[int] = None
    workers: int = 2
    #: Admission cap: jobs admitted but not yet answered.
    queue_limit: int = 64
    #: Applied when a query carries no ``timeout`` of its own.
    default_timeout: Optional[float] = 30.0
    #: Default chase step budget (per query, overridable per request).
    default_max_steps: int = 100_000
    #: Theory text served to queries that name no theory (optional).
    theory_text: Optional[str] = None
    theory_source: str = "<default>"
    #: Database text used by queries that carry none (optional).
    database_text: str = ""
    strategy: str = "auto"
    strict: bool = False
    allow_faults: bool = False
    registry_capacity: int = 32
    max_rules: int = 100_000
    saturation_max_rules: int = 200_000
    #: Persistent materialization snapshots: workers save every complete
    #: materialization here and warm from it at registration, so a
    #: restarted service answers its first query without re-chasing.
    snapshot_dir: Optional[str] = None
    drain_grace: float = 10.0
    #: Baseline backoff hint carried by every shed response; when the
    #: shed is caused by a crash-looping pool the hint grows to cover
    #: the pool's current respawn backoff instead.
    shed_retry_after_ms: float = 100.0
    #: Crash-loop protection knobs (see ``PoolConfig`` for semantics).
    crash_loop_window: float = 10.0
    crash_loop_threshold: int = 5
    respawn_backoff_base: float = 0.25
    respawn_backoff_max: float = 10.0
    #: End-to-end request tracing (trace ids, worker span capture, the
    #: flight recorder).  Off, requests run exactly as before.
    trace: bool = True
    #: Deep-trace (capture the worker's span tree for) one request in
    #: ``trace_sample``; requests with explicit trace context
    #: (client-supplied ``trace_id``/``span_id``) or ``explain: true``
    #: always deep-trace.  0 disables sampling (explicit-only).  The
    #: server-side trace — marks, phase breakdown, latency histograms,
    #: flight-recorder entry — is kept for *every* request regardless;
    #: only the worker-side instrumentation + envelope is sampled, so
    #: the hot path stays within the tracing overhead budget.
    trace_sample: int = 16
    #: Flight-recorder ring sizes: last N traces / slowest M traces.
    recent_traces: int = 256
    slow_traces: int = 32

    def pool_config(self) -> PoolConfig:
        return PoolConfig(
            workers=self.workers,
            registry_capacity=self.registry_capacity,
            strict_registry=self.strict,
            max_rules=self.max_rules,
            saturation_max_rules=self.saturation_max_rules,
            snapshot_dir=self.snapshot_dir,
            allow_faults=self.allow_faults,
            drain_grace=self.drain_grace,
            crash_loop_window=self.crash_loop_window,
            crash_loop_threshold=self.crash_loop_threshold,
            respawn_backoff_base=self.respawn_backoff_base,
            respawn_backoff_max=self.respawn_backoff_max,
        )


@dataclass
class _Job:
    """One admitted unit of work awaiting its worker response."""

    job_id: str
    payload: dict
    theory_text: str
    future: asyncio.Future = field(repr=False)
    trace: Optional[RequestTrace] = None


class ReasoningServer:
    """The service: listeners + admission + dispatcher + worker pool."""

    def __init__(self, config: ServiceConfig) -> None:
        if config.strategy not in REQUESTABLE_STRATEGIES:
            raise ValueError(
                f"unknown strategy {config.strategy!r}; expected one of "
                f"{REQUESTABLE_STRATEGIES}"
            )
        self.config = config
        self.metrics = MetricsRegistry()
        self.recorder = FlightRecorder(config.recent_traces, config.slow_traces)
        self.pool = WorkerPool(config.pool_config())
        #: content hash -> rule text, for queries naming a theory by hash.
        self._texts: dict[str, str] = {}
        #: content hash -> compile summary (strategy, classes, advisor
        #: verdict), captured from register results for ``/debug/theories``.
        self._theories: dict[str, dict] = {}
        self._default_hash: Optional[str] = None
        if config.theory_text is not None:
            self._default_hash = content_hash(config.theory_text)
            self._texts[self._default_hash] = config.theory_text
        self._pending: list[_Job] = []
        self._in_flight: dict[str, _Job] = {}
        #: theory hash -> {"text", "db_key"}: the authoritative live
        #: database per theory, advanced by every successful update.
        self._live_dbs: dict[str, dict] = {}
        #: theory hash -> worker id holding that theory's live models
        #: (sticky dispatch; falls back when the worker died).
        self._affinity: dict[str, int] = {}
        self._subscriptions: dict[int, _Subscription] = {}
        self._sub_ids = itertools.count(1)
        self._job_ids = itertools.count(1)
        self._trace_seq = itertools.count()
        self._dispatch_wakeup: Optional[asyncio.Event] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._servers: list[asyncio.base_events.Server] = []
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._draining = False
        self._drained = asyncio.Event()
        self._started_at = time.monotonic()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def http_port(self) -> int:
        return (
            self.config.http_port
            if self.config.http_port is not None
            else self.config.port + 1
        )

    def bound_ports(self) -> tuple[int, int]:
        """The actually-bound (query, ops) ports — differs from the
        config when it asked for port 0 (tests bind ephemerally)."""
        if len(self._servers) != 2:
            raise RuntimeError("server not started")
        return tuple(
            server.sockets[0].getsockname()[1] for server in self._servers
        )

    async def start(self) -> None:
        """Bind both listeners, start the pool, warm the default theory."""
        self._loop = asyncio.get_running_loop()
        self._dispatch_wakeup = asyncio.Event()
        self.pool.start(
            self._on_worker_result,
            on_restart=self._on_worker_restart,
            on_event=self._on_pool_event,
        )
        self._dispatcher = asyncio.create_task(
            self._dispatch_loop(), name="repro-serve-dispatch"
        )
        # Warm before binding: once the query plane answers at all, the
        # default theory is compiled on every worker — no request can
        # race the warm-up registers (a crash-injected query sharing a
        # warm-up batch would otherwise take the whole server down).
        if self.config.theory_text is not None:
            await self._warm_default_theory()
        query_server = await asyncio.start_server(
            self._handle_query_connection,
            self.config.host,
            self.config.port,
            limit=protocol.MAX_LINE_BYTES,
        )
        ops_server = await asyncio.start_server(
            self._handle_http_connection,
            self.config.host,
            self.http_port,
            limit=64 * 1024,
        )
        self._servers = [query_server, ops_server]

    async def _warm_default_theory(self) -> None:
        """Broadcast a register job so every worker compiles the default
        theory before the first query lands."""
        assert self.config.theory_text is not None
        jobs = []
        for _ in range(self.config.workers):
            job = self._admit(
                {"kind": "register", "strategy": self.config.strategy,
                 "source": self.config.theory_source},
                self.config.theory_text,
                force=True,
            )
            jobs.append(job)
        # One register per worker: dispatch one batch at a time so the
        # least-loaded choice rotates across workers.
        for job in jobs:
            self.pool.dispatch(job.theory_text, [job.payload])
            self._in_flight[job.job_id] = job
            self._pending.remove(job)
        results = await asyncio.gather(*(job.future for job in jobs))
        for result in results:
            if not result.get("ok"):
                raise InternalError(
                    "default theory failed to compile: "
                    f"{result.get('error', {}).get('message', result)}"
                )

    async def run(self) -> None:
        """Start, install signal-driven drain, serve until drained."""
        try:
            await self.start()
        except Exception:
            # Startup failed after the pool was spawned (e.g. the default
            # theory's warm-up register came back as an error): reap the
            # workers before propagating so a failed boot leaves no
            # orphan processes behind.
            if self._dispatcher is not None:
                self._dispatcher.cancel()
            await asyncio.get_running_loop().run_in_executor(
                None, self.pool.stop
            )
            raise
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum, lambda: asyncio.ensure_future(self.drain())
                )
            except NotImplementedError:  # pragma: no cover - non-Unix
                pass
        await self._drained.wait()

    async def drain(self) -> bool:
        """Graceful shutdown: shed new work, finish in-flight, stop all.

        Returns ``True`` when the pool drained cleanly within grace."""
        if self._draining:
            await self._drained.wait()
            return True
        self._draining = True
        deadline = time.monotonic() + self.config.drain_grace
        while (self._pending or self._in_flight) and time.monotonic() < deadline:
            if self._dispatch_wakeup is not None:
                self._dispatch_wakeup.set()
            await asyncio.sleep(0.05)
        for server in self._servers:
            server.close()
        for server in self._servers:
            await server.wait_closed()
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
        loop = asyncio.get_running_loop()
        clean = await loop.run_in_executor(None, self.pool.stop)
        for job in list(self._in_flight.values()) + list(self._pending):
            if not job.future.done():
                job.future.set_result(
                    protocol.error_response(
                        protocol.ERR_DRAINING, "server shut down mid-request"
                    )
                )
        self._pending.clear()
        self._in_flight.clear()
        self._drained.set()
        return clean

    # ------------------------------------------------------------------
    # admission + dispatch
    # ------------------------------------------------------------------
    def _outstanding(self) -> int:
        return len(self._pending) + len(self._in_flight)

    def _admit(
        self,
        payload: dict,
        theory_text: str,
        *,
        force: bool = False,
        trace: Optional[RequestTrace] = None,
    ) -> _Job:
        """Assign a job id, enqueue, wake the dispatcher.

        ``force`` bypasses the cap (internal warm-up jobs only).  Raises
        nothing — admission *refusal* happens in the caller, which has
        the request id to shed with."""
        job_id = f"job-{next(self._job_ids)}"
        payload = dict(payload)
        payload["job_id"] = job_id
        if trace is not None and trace.deep:
            # The worker runs the job under instrumentation and ships its
            # span tree back in the result envelope (see pool.run_job).
            payload["trace"] = True
            payload["trace_id"] = trace.trace_id
            payload["span_id"] = trace.span_id
        assert self._loop is not None
        job = _Job(
            job_id=job_id,
            payload=payload,
            theory_text=theory_text,
            future=self._loop.create_future(),
            trace=trace,
        )
        self._pending.append(job)
        if trace is not None:
            trace.mark("admitted")
        if not force and self._dispatch_wakeup is not None:
            self._dispatch_wakeup.set()
        return job

    async def _dispatch_loop(self) -> None:
        """Sweep the pending list, group by theory hash, batch-dispatch."""
        assert self._dispatch_wakeup is not None
        while True:
            await self._dispatch_wakeup.wait()
            self._dispatch_wakeup.clear()
            if not self._pending:
                continue
            batch, self._pending = self._pending, []
            groups: dict[str, list[_Job]] = {}
            for job in batch:
                groups.setdefault(content_hash(job.theory_text), []).append(job)
            for digest, jobs in groups.items():
                self.metrics.inc("service.batches")
                self.metrics.inc("service.batched_jobs", len(jobs))
                for job in jobs:
                    self._in_flight[job.job_id] = job
                try:
                    worker_id = self.pool.dispatch(
                        jobs[0].theory_text,
                        [job.payload for job in jobs],
                        prefer=self._affinity.get(digest),
                    )
                except NoLiveWorkers as exc:
                    # Degraded-but-serving: with every worker dead (or
                    # crash-loop backoff holding respawns), shed with a
                    # hint that covers the backoff instead of erroring —
                    # a well-behaved client retries into a healed pool.
                    self.metrics.inc("service.shed.no_workers")
                    hint = self._retry_after_ms()
                    for job in jobs:
                        self._in_flight.pop(job.job_id, None)
                        if job.trace is not None:
                            job.trace.event("dispatch_failed", message=str(exc))
                        if not job.future.done():
                            job.future.set_result(
                                protocol.shed_response(
                                    protocol.ERR_OVERLOADED,
                                    f"no live workers ({exc}); back off and retry",
                                    retry_after_ms=hint,
                                )
                            )
                except RuntimeError as exc:  # dispatch failed some other way
                    for job in jobs:
                        self._in_flight.pop(job.job_id, None)
                        if job.trace is not None:
                            job.trace.event("dispatch_failed", message=str(exc))
                        if not job.future.done():
                            job.future.set_result(
                                protocol.error_response(
                                    protocol.ERR_INTERNAL, str(exc)
                                )
                            )
                else:
                    if any(
                        job.payload.get("kind") == "update" for job in jobs
                    ):
                        # The worker now holds this theory's live models;
                        # later updates/queries stick to it while alive.
                        self._affinity[digest] = worker_id
                    for job in jobs:
                        if job.trace is not None:
                            job.trace.mark("dispatched")
                            job.trace.set(worker=worker_id, batch_size=len(jobs))

    def _on_worker_result(self, job_id: str, payload: dict) -> None:
        """Pump-thread callback — marshal onto the loop."""
        loop = self._loop
        if loop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(self._complete_job, job_id, payload)

    def _on_worker_restart(self, worker_id: int) -> None:
        loop = self._loop
        if loop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(
                self.metrics.inc, "service.worker_restarts"
            )

    def _on_pool_event(self, event: str, attrs: dict) -> None:
        """Pool-thread callback (monitor/pump) — marshal onto the loop.

        Every pool event becomes (a) a counter under its own name
        (``worker.crash_loop``, ``worker.crashed``, …) and (b) a flight-
        recorder service event, so ``repro tail`` shows *why* the pool
        degraded alongside the requests it degraded."""
        loop = self._loop
        if loop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(self._record_pool_event, event, attrs)

    def _record_pool_event(self, event: str, attrs: dict) -> None:
        self.metrics.inc(event)
        self.recorder.note(event, **attrs)

    def _complete_job(self, job_id: str, payload: dict) -> None:
        job = self._in_flight.pop(job_id, None)
        if job is None or job.future.done():
            return
        if job.trace is not None:
            job.trace.mark("completed")
            error = payload.get("error")
            if (
                isinstance(error, dict)
                and error.get("code") == protocol.ERR_WORKER_CRASHED
            ):
                job.trace.event(
                    "worker_crashed", message=error.get("message", "")
                )
        stats = payload.get("stats")
        if isinstance(stats, dict):
            for key in _WORKER_STAT_KEYS:
                value = stats.get(key)
                if value:
                    self.metrics.inc(f"service.worker.{key}", value)
            for key in _WORKER_GAUGE_KEYS:
                value = stats.get(key)
                if value is not None:
                    self.metrics.gauge(f"service.worker.{key}", value)
            elapsed = stats.get("elapsed_ms")
            if elapsed is not None:
                # Histogram, not a series: constant memory under any
                # request volume (a series would grow per batch forever).
                self.metrics.observe_hist("service.worker.elapsed_ms", elapsed)
        if (
            payload.get("ok")
            and job.payload.get("kind") == "register"
            and "theory" in payload
        ):
            # Register results spread CompiledTheory.describe(); keep the
            # summary (minus per-job stats) for the /debug/theories surface.
            summary = {
                key: value for key, value in payload.items()
                if key not in ("ok", "stats", "id")
            }
            self._theories[payload["theory"]] = summary
        job.future.set_result(payload)

    # ------------------------------------------------------------------
    # query plane
    # ------------------------------------------------------------------
    async def _handle_query_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.metrics.inc("service.connections")
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(
                        protocol.encode(
                            protocol.error_response(
                                protocol.ERR_INVALID_REQUEST,
                                f"request line exceeds {protocol.MAX_LINE_BYTES}"
                                " bytes",
                            )
                        )
                    )
                    await writer.drain()
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                response = await self._handle_request_line(line, writer)
                writer.write(protocol.encode(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            dead_subs = [
                sub_id
                for sub_id, sub in self._subscriptions.items()
                if sub.writer is writer
            ]
            for sub_id in dead_subs:
                del self._subscriptions[sub_id]
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _handle_request_line(
        self, line: bytes, writer: Optional[asyncio.StreamWriter] = None
    ) -> dict:
        self.metrics.inc("service.requests")
        try:
            request = protocol.decode(line)
        except ValueError as exc:
            self.metrics.inc("service.invalid")
            return protocol.error_response(
                protocol.ERR_INVALID_REQUEST, f"malformed request: {exc}"
            )
        request_id = request.get("id")
        complaint = protocol.validate_request(request)
        if complaint is not None:
            self.metrics.inc("service.invalid")
            return protocol.error_response(
                protocol.ERR_INVALID_REQUEST, complaint, request_id=request_id
            )
        op = request["op"]
        handler = getattr(self, f"_op_{op}")
        try:
            if op == "subscribe":
                # Subscriptions bind to the connection they arrived on.
                response = await handler(request, writer)
            else:
                response = await handler(request)
        except Exception as exc:  # noqa: BLE001 - no-traceback boundary
            self.metrics.inc("service.internal_errors")
            response = protocol.error_response(
                protocol.ERR_INTERNAL, f"{type(exc).__name__}: {exc}"
            )
        response.setdefault("id", request_id)
        return response

    # -- ops ------------------------------------------------------------
    async def _op_ping(self, request: dict) -> dict:
        return {
            "ok": True,
            "pong": True,
            "version": __version__,
            "protocol": protocol.PROTOCOL_VERSION,
        }

    async def _op_status(self, request: dict) -> dict:
        return {
            "ok": True,
            "version": __version__,
            "draining": self._draining,
            "queue": len(self._pending),
            "in_flight": len(self._in_flight),
            "queue_limit": self.config.queue_limit,
            "workers": {
                "configured": self.config.workers,
                "alive": self.pool.alive_workers(),
                "restarts": self.pool.restarts,
                "hard_kills": self.pool.hard_kills,
                "crash_loops": self.pool.crash_loops,
                "corrupt_envelopes": self.pool.corrupt_envelopes,
                "respawn_backoff_ms": self.pool.respawn_backoff_remaining_ms(),
            },
            "theories": len(self._texts),
            "live_databases": len(self._live_dbs),
            "subscriptions": len(self._subscriptions),
            "store": {
                "snapshot_dir": self.config.snapshot_dir,
                "bytes": self.metrics.gauges.get("service.worker.store_bytes", 0),
                "symbols": self.metrics.gauges.get(
                    "service.worker.store_symbols", 0
                ),
                "snapshot_loads": self.metrics.counters.get(
                    "service.worker.snapshot_loads", 0
                ),
                "snapshot_saves": self.metrics.counters.get(
                    "service.worker.snapshot_saves", 0
                ),
                "snapshot_errors": self.metrics.counters.get(
                    "service.worker.snapshot_errors", 0
                ),
            },
            "tracing": {
                "enabled": self.config.trace,
                "sample": self.config.trace_sample,
                "recorded": self.recorder.recorded,
                "held": len(self.recorder),
            },
            "counters": dict(self.metrics.counters),
        }

    def _retry_after_ms(self) -> float:
        """The backoff hint for shed responses: the configured baseline,
        stretched to cover the pool's respawn backoff when the shed is a
        crash-loop symptom — a client that honours the hint then retries
        *after* a replacement worker could exist, not into the same
        hole."""
        return max(
            self.config.shed_retry_after_ms,
            self.pool.respawn_backoff_remaining_ms(),
        )

    def _shed_or_none(self, request_id: Any) -> Optional[dict]:
        """The admission-control gate, shared by register and query."""
        if self._draining:
            self.metrics.inc("service.shed.draining")
            return protocol.shed_response(
                protocol.ERR_DRAINING,
                "server is draining; retry against another instance",
                request_id=request_id,
                retry_after_ms=self._retry_after_ms(),
            )
        if self._outstanding() >= self.config.queue_limit:
            self.metrics.inc("service.shed.overloaded")
            return protocol.shed_response(
                protocol.ERR_OVERLOADED,
                f"request queue full ({self.config.queue_limit} outstanding);"
                " back off and retry",
                request_id=request_id,
                retry_after_ms=self._retry_after_ms(),
            )
        return None

    def _begin_trace(
        self, op: str, request: dict, *, deep_default: bool = False
    ) -> Optional[RequestTrace]:
        """Open a trace and decide its depth.

        Every request gets the cheap server-side trace (marks, phase
        breakdown, histograms, a flight-recorder entry).  *Deep* traces
        additionally run the worker under instrumentation and ship its
        span tree back — that is the expensive half, so it is reserved
        for requests with explicit trace context (a client-supplied
        ``trace_id``/``span_id``), ``explain: true``, and a 1-in-
        ``trace_sample`` sample of the rest (see DESIGN.md §11.3)."""
        if not self.config.trace:
            return None
        trace = RequestTrace.begin(op, request)
        sample = self.config.trace_sample
        trace.deep = bool(
            deep_default
            or trace.client_supplied
            or trace.parent_span_id is not None
            or request.get("explain")
            or (sample > 0 and next(self._trace_seq) % sample == 0)
        )
        return trace

    def _finish_trace(
        self,
        trace: Optional[RequestTrace],
        response: dict,
        *,
        explain: bool = False,
    ) -> dict:
        """Finalise and record a trace; annotate (never mutate the shape
        of) the response.

        The worker's raw span envelope is popped off the response — it is
        server-side assembly material, not client payload — and the
        per-op / per-phase latency histograms are fed here, so the
        ``/metrics`` ladder covers exactly the traced requests."""
        if trace is None:
            return response
        envelope = response.pop("trace", None)
        if isinstance(envelope, dict):
            trace.attach_worker(envelope)
        error = response.get("error")
        if response.get("ok"):
            status = "ok" if response.get("complete", True) else "partial"
        elif isinstance(error, dict):
            kind = "shed" if response.get("shed") else "error"
            status = f"{kind}:{error.get('code', 'unknown')}"
        else:
            status = "error:unknown"
        trace.finish(status)
        self.recorder.record(trace)
        if trace.elapsed_ms is not None:
            self.metrics.observe_hist(
                f"service.request_ms.{trace.op}", trace.elapsed_ms
            )
        for phase, duration in trace.phases().items():
            self.metrics.observe_hist(f"service.phase_ms.{phase}", duration)
        response["trace_id"] = trace.trace_id
        if explain:
            response["trace"] = trace.to_json()
        return response

    async def _op_register(self, request: dict) -> dict:
        request_id = request.get("id")
        # Registers are rare and compile-dominated: always deep-trace.
        trace = self._begin_trace("register", request, deep_default=True)
        shed = self._shed_or_none(request_id)
        if shed is not None:
            return self._finish_trace(trace, shed)
        strategy = request.get("strategy", "auto")
        if strategy not in REQUESTABLE_STRATEGIES:
            return self._finish_trace(
                trace,
                protocol.error_response(
                    protocol.ERR_INVALID_REQUEST,
                    f"unknown strategy {strategy!r}; expected one of "
                    f"{REQUESTABLE_STRATEGIES}",
                    request_id=request_id,
                ),
            )
        text = request["theory"]
        self.metrics.inc("service.registrations")
        job = self._admit(
            {"kind": "register", "strategy": strategy, "source": "<register op>"},
            text,
            trace=trace,
        )
        result = await self._await_job(job, timeout=self.config.default_timeout)
        if result.get("ok"):
            self._texts[result["theory"]] = text
        return self._finish_trace(trace, result)

    async def _op_query(self, request: dict) -> dict:
        request_id = request.get("id")
        trace = self._begin_trace("query", request)
        explain = bool(request.get("explain"))
        shed = self._shed_or_none(request_id)
        if shed is not None:
            return self._finish_trace(trace, shed, explain=explain)
        theory_text = self._resolve_theory(request)
        if theory_text is None:
            return self._finish_trace(
                trace,
                protocol.error_response(
                    protocol.ERR_UNKNOWN_THEORY,
                    "no theory: name a registered content hash in 'theory', "
                    "inline rules in 'theory_text', or start the server with "
                    "a default theory",
                    request_id=request_id,
                ),
                explain=explain,
            )
        timeout = request.get("timeout", self.config.default_timeout)
        payload = {
            "kind": "query",
            "output": request["output"],
            "database": self._live_database_text(
                content_hash(theory_text), request
            ),
            "strategy": request.get("strategy", self.config.strategy),
            "timeout": timeout,
            "max_steps": request.get("max_steps", self.config.default_max_steps),
            "max_depth": request.get("max_depth"),
        }
        if "inject" in request:
            payload["inject"] = request["inject"]
        if trace is not None:
            trace.set(output=request["output"])
        self.metrics.inc("service.queries")
        job = self._admit(payload, theory_text, trace=trace)
        result = await self._await_job(job, timeout=timeout)
        return self._finish_trace(trace, result, explain=explain)

    # -- incremental updates & subscriptions ---------------------------
    def _live_database_text(self, digest: str, request: dict) -> str:
        """The base database an update/subscribe applies to: an explicit
        ``database`` in the request, else the theory's live state, else
        the server default."""
        if "database" in request:
            return request["database"]
        live = self._live_dbs.get(digest)
        if live is not None:
            return live["text"]
        return self.config.database_text

    async def _op_update(self, request: dict) -> dict:
        request_id = request.get("id")
        trace = self._begin_trace("update", request)
        shed = self._shed_or_none(request_id)
        if shed is not None:
            return self._finish_trace(trace, shed)
        theory_text = self._resolve_theory(request)
        if theory_text is None:
            return self._finish_trace(
                trace,
                protocol.error_response(
                    protocol.ERR_UNKNOWN_THEORY,
                    "no theory: name a registered content hash in 'theory', "
                    "inline rules in 'theory_text', or start the server with "
                    "a default theory",
                    request_id=request_id,
                ),
            )
        digest = content_hash(theory_text)
        timeout = request.get("timeout", self.config.default_timeout)
        payload = {
            "kind": "update",
            "database": self._live_database_text(digest, request),
            "insert": request.get("insert", []),
            "retract": request.get("retract", []),
            "strategy": request.get("strategy", self.config.strategy),
            "timeout": timeout,
            "max_steps": request.get("max_steps", self.config.default_max_steps),
            "max_depth": request.get("max_depth"),
        }
        self.metrics.inc("service.updates")
        job = self._admit(payload, theory_text, trace=trace)
        result = await self._await_job(job, timeout=timeout)
        if result.get("ok") and "db_key" in result:
            # The rendered post-update database is server-side material
            # (the new authoritative live text), not client payload.
            new_text = result.pop("database", None)
            if new_text is not None:
                self._live_dbs[digest] = {
                    "text": new_text,
                    "db_key": result["db_key"],
                }
            await self._refresh_subscriptions(digest, result["db_key"])
        return self._finish_trace(trace, result)

    async def _op_subscribe(
        self, request: dict, writer: Optional[asyncio.StreamWriter]
    ) -> dict:
        request_id = request.get("id")
        trace = self._begin_trace("subscribe", request)
        shed = self._shed_or_none(request_id)
        if shed is not None:
            return self._finish_trace(trace, shed)
        if writer is None:
            return self._finish_trace(
                trace,
                protocol.error_response(
                    protocol.ERR_INVALID_REQUEST,
                    "subscribe needs a live query-plane connection to push to",
                    request_id=request_id,
                ),
            )
        theory_text = self._resolve_theory(request)
        if theory_text is None:
            return self._finish_trace(
                trace,
                protocol.error_response(
                    protocol.ERR_UNKNOWN_THEORY,
                    "no theory to subscribe against: name a registered hash, "
                    "inline rules, or start the server with a default theory",
                    request_id=request_id,
                ),
            )
        digest = content_hash(theory_text)
        timeout = request.get("timeout", self.config.default_timeout)
        payload = {
            "kind": "query",
            "output": request["output"],
            "database": self._live_database_text(digest, request),
            "strategy": request.get("strategy", self.config.strategy),
            "timeout": timeout,
            "max_steps": self.config.default_max_steps,
            "max_depth": None,
        }
        self.metrics.inc("service.subscriptions")
        job = self._admit(payload, theory_text, trace=trace)
        result = await self._await_job(job, timeout=timeout)
        if not result.get("ok"):
            return self._finish_trace(trace, result)
        sub_id = next(self._sub_ids)
        self._subscriptions[sub_id] = _Subscription(
            sub_id=sub_id,
            writer=writer,
            theory=digest,
            theory_text=theory_text,
            output=request["output"],
            answers=result.get("answers", []),
        )
        response = {
            "ok": True,
            "subscription": sub_id,
            "theory": digest,
            "output": request["output"],
            "answers": result.get("answers", []),
            "complete": result.get("complete", True),
        }
        return self._finish_trace(trace, response)

    async def _refresh_subscriptions(self, digest: str, db_key: str) -> None:
        """Re-evaluate every continuous query of an updated theory and
        push the answer diff to its connection.

        Refresh queries are internal work admitted past the cap
        (``force``) — an update that was admitted must be allowed to
        deliver its consequences.  Delivery is per-subscription ordered:
        this coroutine completes before the update response returns, so
        a subscriber always sees the diff for update *n* before any
        client that waited on update *n*'s response can issue a new one."""
        subs = [
            sub
            for sub in self._subscriptions.values()
            if sub.theory == digest
        ]
        if not subs:
            return
        live = self._live_dbs.get(digest)
        database_text = live["text"] if live else self.config.database_text
        for sub in subs:
            payload = {
                "kind": "query",
                "output": sub.output,
                "database": database_text,
                "strategy": self.config.strategy,
                "timeout": self.config.default_timeout,
                "max_steps": self.config.default_max_steps,
                "max_depth": None,
            }
            job = self._admit(payload, sub.theory_text, force=True)
            self._pending.remove(job)
            self._in_flight[job.job_id] = job
            try:
                self.pool.dispatch(
                    sub.theory_text,
                    [job.payload],
                    prefer=self._affinity.get(digest),
                )
            except (NoLiveWorkers, RuntimeError):
                self._in_flight.pop(job.job_id, None)
                continue
            result = await self._await_job(
                job, timeout=self.config.default_timeout
            )
            if not result.get("ok"):
                continue
            answers = result.get("answers", [])
            before = {tuple(answer) for answer in sub.answers}
            after = {tuple(answer) for answer in answers}
            added = sorted(list(answer) for answer in after - before)
            removed = sorted(list(answer) for answer in before - after)
            sub.answers = answers
            if not added and not removed:
                continue
            event = {
                "event": "subscription",
                "subscription": sub.sub_id,
                "theory": digest,
                "output": sub.output,
                "added": added,
                "removed": removed,
                "db_key": db_key,
            }
            try:
                sub.writer.write(protocol.encode(event))
                await sub.writer.drain()
                self.metrics.inc("service.subscription_pushes")
            except (ConnectionResetError, BrokenPipeError, OSError):
                self._subscriptions.pop(sub.sub_id, None)

    def _resolve_theory(self, request: dict) -> Optional[str]:
        if "theory_text" in request:
            return request["theory_text"]
        if "theory" in request:
            return self._texts.get(request["theory"])
        if self._default_hash is not None:
            return self._texts[self._default_hash]
        return None

    async def _await_job(self, job: _Job, *, timeout: Optional[float]) -> dict:
        """Wait for the worker's answer, bounded well past the worker's
        own governor + the pool's hard-kill watchdog — reaching this
        bound means the recovery machinery itself failed."""
        bound = None
        if timeout is not None:
            hard = self.pool.config
            bound = (
                float(timeout) * (hard.hard_kill_factor or 4.0)
                + hard.hard_kill_floor
                + 30.0
            )
        try:
            return await asyncio.wait_for(asyncio.shield(job.future), bound)
        except asyncio.TimeoutError:
            self._in_flight.pop(job.job_id, None)
            if job in self._pending:
                self._pending.remove(job)
            self.metrics.inc("service.lost_jobs")
            if job.trace is not None:
                job.trace.event("abandoned")
            return protocol.error_response(
                protocol.ERR_INTERNAL,
                "worker response overdue; job abandoned",
            )

    # ------------------------------------------------------------------
    # ops plane (healthz / metrics)
    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        alive = self.pool.alive_workers()
        return {
            "ok": (not self._draining) and alive > 0,
            "version": __version__,
            "protocol": protocol.PROTOCOL_VERSION,
            "draining": self._draining,
            "workers_alive": alive,
            "worker_pids": self.pool.worker_pids(),
            "uptime_s": round(time.monotonic() - self._started_at, 3),
        }

    #: ``# HELP`` text for the metrics a dashboard reaches for first.
    _METRIC_HELP = {
        "service.requests": "NDJSON requests received on the query plane.",
        "service.queries": "Query ops admitted past validation.",
        "service.updates": "Update ops (insert/retract batches) admitted.",
        "service.subscriptions": "Subscribe ops registered.",
        "service.subscription_pushes": (
            "Subscription diff events pushed to connections."
        ),
        "service.request_ms.update": "End-to-end update latency histogram.",
        "service.worker.updates": (
            "Registry-level live-model updates applied by workers."
        ),
        "service.worker.incremental_updates": (
            "Incremental maintenance batches applied (repro.incremental)."
        ),
        "service.worker.incremental_overdeleted": (
            "Rows overdeleted by the DRed delete closure."
        ),
        "service.worker.incremental_rederived": (
            "Overdeleted rows restored by the rederivation pass."
        ),
        "service.worker.incremental_fallbacks": (
            "Updates that fell back to a reported full recompute."
        ),
        "service.worker.elapsed_ms": "Worker-side job latency histogram.",
        "service.worker.advisor_predicted_chase": (
            "Registrations auto-routed to the chase by a termination proof."
        ),
        "service.worker.advisor_fallbacks": (
            "Registrations that fell back to the budgeted chase reactively."
        ),
        "service.worker.materializations": (
            "Full materialization computations (chase or fixpoint runs)."
        ),
        "service.worker.snapshot_loads": (
            "Materializations warmed from on-disk snapshots."
        ),
        "service.worker.snapshot_saves": (
            "Complete materializations persisted as snapshots."
        ),
        "service.worker.snapshot_errors": (
            "Snapshot files rejected (corrupt/truncated/mismatched)."
        ),
        "service.worker.store_bytes": (
            "Resident bytes of cached columnar materializations (gauge)."
        ),
        "service.worker.store_symbols": (
            "Interned symbols across cached materializations (gauge)."
        ),
        "service.request_ms.query": "End-to-end query latency histogram.",
        "service.request_ms.register": "End-to-end register latency histogram.",
        "service.queue_depth": "Jobs admitted but not yet dispatched.",
        "service.in_flight": "Jobs currently on a worker.",
        "service.workers_alive": "Live worker processes.",
        "service.worker_restarts_total": "Worker respawns since start.",
        "service.uptime_seconds": "Seconds since server start.",
        "pool.respawn_backoff_ms": (
            "Current crash-loop respawn backoff (0 when healthy)."
        ),
        "pool.crash_loops_total": "Respawns deferred by crash-loop backoff.",
        "pool.corrupt_envelopes_total": (
            "Worker result envelopes rejected as malformed."
        ),
        "worker.crash_loop": "Crash-loop backoff activations.",
    }

    def render_metrics(self) -> str:
        """Prometheus text exposition (format 0.0.4) of the server
        registry: counters, gauges, latency histograms with the full
        ``_bucket``/``_sum``/``_count`` ladder, plus point-in-time
        operational gauges.  Validated by
        :func:`repro.obs.prometheus.validate_exposition` in CI."""
        return render_exposition(
            self.metrics,
            help_texts=self._METRIC_HELP,
            extra_gauges={
                "service.queue_depth": len(self._pending),
                "service.in_flight": len(self._in_flight),
                "service.workers_alive": self.pool.alive_workers(),
                "service.worker_restarts_total": self.pool.restarts,
                "service.uptime_seconds": round(
                    time.monotonic() - self._started_at, 3
                ),
                "pool.respawn_backoff_ms": (
                    self.pool.respawn_backoff_remaining_ms()
                ),
                "pool.crash_loops_total": self.pool.crash_loops,
                "pool.corrupt_envelopes_total": self.pool.corrupt_envelopes,
            },
        )

    def debug_requests(self) -> dict:
        """``GET /debug/requests``: recent + slowest trace summaries."""
        return {
            "tracing": self.config.trace,
            "recorded": self.recorder.recorded,
            "recent": [trace.to_summary() for trace in self.recorder.recent()],
            "slowest": [trace.to_summary() for trace in self.recorder.slowest()],
            "events": self.recorder.events(),
        }

    def debug_theories(self) -> dict:
        """``GET /debug/theories``: compile summaries per registered
        theory — the strategy the registry picked and the advisor's
        reasoning (criterion, engine verdicts, cost estimate)."""
        return {
            "registered": len(self._texts),
            "theories": [
                self._theories[digest]
                for digest in sorted(self._theories)
            ],
        }

    async def _handle_http_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readline()
            parts = request_line.decode("latin-1", "replace").split()
            # Drain headers (we route on the request line alone).
            while True:
                header = await reader.readline()
                if header in (b"\r\n", b"\n", b""):
                    break
            if len(parts) >= 2 and parts[0] == "GET":
                path = parts[1].split("?", 1)[0]
            else:
                path = None
            if path == "/healthz":
                body = json.dumps(self.healthz(), sort_keys=True).encode()
                self._http_respond(writer, 200, "application/json", body)
            elif path == "/metrics":
                body = self.render_metrics().encode()
                self._http_respond(
                    writer, 200, "text/plain; version=0.0.4", body
                )
            elif path == "/debug/requests":
                body = json.dumps(self.debug_requests(), sort_keys=True).encode()
                self._http_respond(writer, 200, "application/json", body)
            elif path == "/debug/theories":
                body = json.dumps(self.debug_theories(), sort_keys=True).encode()
                self._http_respond(writer, 200, "application/json", body)
            elif path is not None and path.startswith("/debug/requests/"):
                trace_id = path[len("/debug/requests/"):]
                trace = self.recorder.lookup(trace_id)
                if trace is None:
                    self._http_respond(
                        writer,
                        404,
                        "application/json",
                        json.dumps(
                            {"error": "trace not found (evicted or unknown)",
                             "trace_id": trace_id}
                        ).encode(),
                    )
                else:
                    body = json.dumps(trace.to_json(), sort_keys=True).encode()
                    self._http_respond(writer, 200, "application/json", body)
            else:
                self._http_respond(
                    writer,
                    404,
                    "text/plain",
                    b"not found: try /healthz, /metrics, /debug/requests "
                    b"or /debug/theories\n",
                )
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError, asyncio.LimitOverrunError, ValueError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    @staticmethod
    def _http_respond(
        writer: asyncio.StreamWriter, status: int, content_type: str, body: bytes
    ) -> None:
        reason = {200: "OK", 404: "Not Found"}.get(status, "OK")
        writer.write(
            (
                f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode()
            + body
        )


async def serve(config: ServiceConfig) -> None:
    """Run a :class:`ReasoningServer` until it drains (the CLI entry)."""
    server = ReasoningServer(config)
    await server.run()
