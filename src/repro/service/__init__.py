"""repro.service — reasoning as a service.

The rest of the package is a library a process calls; this package is
the process: a long-lived server that amortises theory preparation
(parse → lint → classify → translate → plan-compile) across requests
instead of paying it per invocation the way the one-shot CLI does.

Layout (each module's docstring carries its own contract):

``protocol``
    The NDJSON wire protocol and its structured error vocabulary.
``registry``
    Content-addressed LRU of :class:`~repro.service.registry.CompiledTheory`
    — the compile-once artifact, including per-database materialization.
``pool``
    Spawn-based persistent worker processes with same-theory batching,
    health-monitored crash restart, and graceful drain.
``server``
    The asyncio front-end: admission control, batching dispatcher, and
    the ``/healthz`` + ``/metrics`` ops plane.
``client``
    Blocking socket client (typed transport errors, optional retry
    policy) plus ops-plane scrape helpers.

Start one with ``repro serve theory.rules`` or programmatically via
:func:`repro.service.server.serve`.  Chaos-test one with ``repro soak``
(see :mod:`repro.chaos`).
"""

from .client import (
    RetryPolicy,
    ServiceClient,
    ServiceError,
    ServiceUnavailable,
    TransportError,
    http_get,
    wait_until_ready,
)
from .pool import PoolConfig, WorkerPool
from .registry import (
    REQUESTABLE_STRATEGIES,
    CompiledTheory,
    TheoryRegistry,
    compile_theory,
    content_hash,
)
from .server import ReasoningServer, ServiceConfig, serve

__all__ = [
    "RetryPolicy",
    "ServiceClient",
    "ServiceError",
    "ServiceUnavailable",
    "TransportError",
    "http_get",
    "wait_until_ready",
    "PoolConfig",
    "WorkerPool",
    "REQUESTABLE_STRATEGIES",
    "CompiledTheory",
    "TheoryRegistry",
    "compile_theory",
    "content_hash",
    "ReasoningServer",
    "ServiceConfig",
    "serve",
]
