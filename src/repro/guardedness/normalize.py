"""Normalization (Proposition 1).

A theory is *normal* when

  (i)  every rule has a singleton head,
  (ii) every rule with existential variables is guarded (non-guarded rules
       are Datalog rules),
  (iii) constants occur only in fact rules ``-> R(~c)``.

``normalize`` establishes (i) and (ii) by the two classical auxiliary-atom
splits; both preserve certain answers over the original signature and the
weak/nearly guardedness classes.  Condition (iii) is available as the
separate, optional :func:`extract_body_constants` pass: our translation
machinery handles inline constants natively, and mechanical extraction can
demote a *plain* (frontier-)guarded rule to its nearly-guarded relative —
precisely why Proposition 1(c) only claims preservation for the weak and
nearly classes.  ``is_normal`` accordingly checks (i) and (ii) and treats
(iii) as satisfied when constants appear only in facts or rule heads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..core.atoms import Atom
from ..core.rules import Rule
from ..core.terms import Constant, Term, Variable
from ..core.theory import Theory
from .classify import is_guarded_rule

__all__ = [
    "normalize",
    "is_normal",
    "extract_body_constants",
    "NormalizationResult",
]

#: Prefix for auxiliary relations introduced by the normalization.  The
#: translations treat these like any other relation.
_AUX_PREFIX = "NF"


@dataclass
class NormalizationResult:
    """The normalized theory plus bookkeeping about introduced symbols."""

    theory: Theory
    auxiliary_relations: set[str] = field(default_factory=set)


def _sorted_vars(variables: Iterable[Variable]) -> tuple[Variable, ...]:
    """The globally fixed enumeration ~X of a variable set (Section 2)."""
    return tuple(sorted(set(variables), key=lambda v: v.name))


class _Normalizer:
    def __init__(self, theory: Theory) -> None:
        self.theory = theory
        self.used_relations = set(theory.relations())
        self.aux_relations: set[str] = set()
        self.counter = 0

    def fresh_relation(self, stem: str) -> str:
        while True:
            name = f"{_AUX_PREFIX}_{stem}_{self.counter}"
            self.counter += 1
            if name not in self.used_relations:
                self.used_relations.add(name)
                self.aux_relations.add(name)
                return name

    # ------------------------------------------------------------------
    def split_head(self, rule: Rule) -> list[Rule]:
        """Establish (i): singleton heads.

        Datalog rules split directly; existential rules route through an
        auxiliary atom collecting frontier and existential variables so the
        shared nulls remain shared."""
        if len(rule.head) == 1:
            return [rule]
        if rule.is_datalog():
            return [Rule(rule.body, (atom,)) for atom in rule.head]
        carrier = _sorted_vars(rule.frontier() | rule.evars())
        aux = Atom(self.fresh_relation("H"), carrier)
        collector = Rule(rule.body, (aux,), rule.exist_vars)
        projections = [Rule((aux,), (atom,)) for atom in rule.head]
        return [collector, *projections]

    def guard_existential(self, rule: Rule) -> list[Rule]:
        """Establish (ii): existential rules must be guarded.

        A non-guarded existential rule ``body -> ∃z H`` becomes::

            body            -> Aux(fvars)
            Aux(fvars)      -> ∃z H

        The second rule is guarded by ``Aux``; the first is Datalog with the
        same body (so the same (weak/frontier) guard applies)."""
        if rule.is_datalog() or is_guarded_rule(rule):
            return [rule]
        frontier = _sorted_vars(rule.frontier())
        aux = Atom(self.fresh_relation("G"), frontier)
        bridge = Rule(rule.body, (aux,))
        fire = Rule((aux,), rule.head, rule.exist_vars)
        return [bridge, fire]

    def run(self) -> NormalizationResult:
        stage_one: list[Rule] = []
        for rule in self.theory:
            stage_one.extend(self.split_head(rule))
        stage_two: list[Rule] = []
        for rule in stage_one:
            stage_two.extend(self.guard_existential(rule))
        return NormalizationResult(Theory(stage_two), self.aux_relations)


def normalize(theory: Theory) -> NormalizationResult:
    """Proposition 1: transform a theory into normal form.

    Certain answers over the original relations are preserved for every
    database; weakly (frontier-)guarded and nearly (frontier-)guarded
    theories remain in their class."""
    return _Normalizer(theory).run()


def is_normal(theory: Theory) -> bool:
    """Check normal-form conditions (i) and (ii), and the relaxed (iii)."""
    for rule in theory:
        if len(rule.head) != 1:
            return False
        if rule.exist_vars and not is_guarded_rule(rule):
            return False
        body_constants = set()
        for literal in rule.body:
            body_constants |= {
                term for term in literal.terms() if isinstance(term, Constant)
            }
        if body_constants and not rule.is_fact():
            return False
    return True


def extract_body_constants(theory: Theory) -> NormalizationResult:
    """Optional (iii)-pass: pull constants out of non-fact rule bodies.

    Each constant ``c`` gets a fresh unary relation ``NF_EQ_c`` with the
    fact ``-> NF_EQ_c(c)``; occurrences of ``c`` in non-fact rule bodies
    are replaced by a fresh variable constrained by ``NF_EQ_c``.  The fresh
    variable is *safe* (its relation's position is never affected), so weak
    and nearly guardedness are preserved; plain guardedness may not be —
    see the module docstring."""
    normalizer = _Normalizer(theory)
    constant_relations: dict[Constant, str] = {}
    new_rules: list[Rule] = []
    fact_rules: list[Rule] = []

    def relation_for(constant: Constant) -> str:
        if constant not in constant_relations:
            name = normalizer.fresh_relation(f"EQ_{constant.name}")
            constant_relations[constant] = name
            fact_rules.append(Rule((), (Atom(name, (constant,)),)))
        return constant_relations[constant]

    for rule in theory:
        if rule.is_fact():
            new_rules.append(rule)
            continue
        body_constants: set[Constant] = set()
        for literal in rule.body:
            body_constants |= {
                term for term in literal.terms() if isinstance(term, Constant)
            }
        if not body_constants:
            new_rules.append(rule)
            continue
        taken = {v.name for v in rule.variables()}
        mapping: dict[Term, Term] = {}
        extra_atoms: list[Atom] = []
        for constant in sorted(body_constants):
            base = f"c_{constant.name}"
            name = base
            suffix = 0
            while name in taken:
                name = f"{base}_{suffix}"
                suffix += 1
            taken.add(name)
            variable = Variable(name)
            mapping[constant] = variable
            extra_atoms.append(Atom(relation_for(constant), (variable,)))
        new_body = tuple(lit.substitute(mapping) for lit in rule.body) + tuple(
            extra_atoms
        )
        new_head = tuple(atom.substitute(mapping) for atom in rule.head)
        new_rules.append(Rule(new_body, new_head, rule.exist_vars))

    return NormalizationResult(
        Theory(new_rules + fact_rules), normalizer.aux_relations
    )
