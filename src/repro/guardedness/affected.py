"""Affected positions and unsafe variables (Definition 2).

A *position* is a pair ``(R, i)``: argument slot ``i`` of relation ``R``
(annotation slots never count — annotations are opaque payload, see
:mod:`repro.core.atoms`).  The affected positions ``ap(Σ)`` are the least
set closed under:

  (i)  every position where an existential variable occurs in a head is
       affected;
  (ii) if **all** body positions of a universal variable ``x`` are affected
       then all head positions of ``x`` are affected.

A variable ``x`` of a rule ``σ`` is *unsafe* w.r.t. ``Σ`` when
``pos(body(σ), x) ⊆ ap(Σ)`` — it may be instantiated by labeled nulls
during the chase.  Only unsafe variables require guarding in the weak
fragments.

Per the stratified-negation extension (Section 8), affected positions are
computed on the theory with negative literals dropped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from ..core.atoms import Atom
from ..core.rules import Rule
from ..core.terms import Variable
from ..core.theory import Theory

__all__ = [
    "Position",
    "AffectedStep",
    "positions_of",
    "affected_positions",
    "affected_derivation",
    "unsafe_variables",
    "variable_body_positions",
]

#: A position ``(relation name, argument index)``.
Position = tuple[str, int]


def positions_of(atoms: Iterable[Atom], variable: Variable) -> set[Position]:
    """``pos(Γ, x)`` — positions at which ``x`` occurs in the atom set."""
    found: set[Position] = set()
    for atom in atoms:
        for index, term in enumerate(atom.args):
            if term == variable:
                found.add((atom.relation, index))
    return found


def variable_body_positions(rule: Rule, variable: Variable) -> set[Position]:
    """``pos(body(σ), x)`` over the positive body."""
    return positions_of(rule.positive_body(), variable)


def affected_positions(theory: Theory) -> set[Position]:
    """Compute ``ap(Σ)`` by the obvious fixpoint iteration.

    Runs in polynomial time: each iteration adds at least one position and
    there are at most ``Σ_R arity(R)`` positions."""
    affected: set[Position] = set()
    # (i) existential-variable positions in heads
    for rule in theory:
        for evar in rule.exist_vars:
            affected |= positions_of(rule.head, evar)
    # (ii) propagate through universal variables
    changed = True
    while changed:
        changed = False
        for rule in theory:
            for variable in rule.uvars():
                body_positions = variable_body_positions(rule, variable)
                if body_positions <= affected:
                    head_positions = positions_of(rule.head, variable)
                    if not head_positions <= affected:
                        affected |= head_positions
                        changed = True
    return affected


@dataclass(frozen=True)
class AffectedStep:
    """One step of an ``ap(Σ)`` derivation (the *why* of an affected position).

    ``kind`` is ``"existential"`` (clause (i): ``variable`` is existential
    in rule ``rule_index`` and occurs at ``position`` in its head) or
    ``"propagated"`` (clause (ii): the universal ``variable`` of rule
    ``rule_index`` has all its positive-body positions — ``sources`` — already
    affected, and occurs at ``position`` in the head).  A derivation is a
    sequence of steps in which every ``sources`` entry is established by an
    earlier step, so it can be replayed and checked mechanically.
    """

    position: Position
    kind: str
    rule_index: int
    variable: str
    sources: tuple[Position, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {
            "position": list(self.position),
            "kind": self.kind,
            "rule": self.rule_index,
            "variable": self.variable,
            "sources": [list(p) for p in self.sources],
        }


def affected_derivation(theory: Theory) -> tuple[AffectedStep, ...]:
    """An explained variant of :func:`affected_positions`.

    Returns a derivation sequence establishing exactly ``ap(Σ)``: each
    position appears in one step whose premises (``sources``) were
    established by strictly earlier steps.  The fixpoint iteration is the
    same as in :func:`affected_positions`, with provenance recorded.
    """
    steps: list[AffectedStep] = []
    established: set[Position] = set()

    def establish(step: AffectedStep) -> None:
        if step.position not in established:
            established.add(step.position)
            steps.append(step)

    for index, rule in enumerate(theory):
        for evar in rule.exist_vars:
            for position in sorted(positions_of(rule.head, evar)):
                establish(AffectedStep(position, "existential", index, evar.name))
    changed = True
    while changed:
        changed = False
        for index, rule in enumerate(theory):
            for variable in sorted(rule.uvars(), key=lambda v: v.name):
                body_positions = variable_body_positions(rule, variable)
                if not body_positions <= established:
                    continue
                sources = tuple(sorted(body_positions))
                for position in sorted(positions_of(rule.head, variable)):
                    if position not in established:
                        establish(
                            AffectedStep(
                                position, "propagated", index, variable.name, sources
                            )
                        )
                        changed = True
    return tuple(steps)


def coherent_affected_positions(theory: Theory) -> set[Position]:
    """The least superset of ``ap(Σ)`` that is *variable-coherent*: for
    every rule and every variable, either all or none of the variable's
    argument positions (body and head) are affected.

    Soundness: an over-approximation of ``ap`` only declares more
    positions potentially-null, which makes more variables unsafe —
    everything downstream (weak guards, annotations) remains correct.

    Purpose: Definition 17 moves *positions* into annotations, but the
    safe-annotation conditions and the frontier-guardedness of ``a(Σ)``
    need every variable to live wholly on one side of the cut.  With the
    plain ``ap(Σ)`` a safe variable can occupy an affected head position
    (e.g. ``S(v,w) → R(w,v)`` in a theory where only ``(R,1)`` is
    affected), leaving ``a(Σ)`` neither safely annotated nor
    frontier-guarded; the coherent closure repairs exactly this.  A theory
    that is weakly frontier-guarded w.r.t. the closure translates cleanly;
    one that is not is reported by the Theorem 2 entry point."""
    affected = set(affected_positions(theory))
    changed = True
    while changed:
        changed = False
        for rule in theory:
            atoms = list(rule.positive_body()) + list(rule.head)
            for variable in rule.variables():
                var_positions = positions_of(atoms, variable)
                if not var_positions:
                    continue
                touched = var_positions & affected
                if touched and not var_positions <= affected:
                    affected |= var_positions
                    changed = True
    return affected


def unsafe_variables(
    rule: Rule,
    theory: Theory,
    ap: set[Position] | None = None,
) -> set[Variable]:
    """``unsafe(σ, Σ)`` — variables whose body positions are all affected.

    Restricted to *argument* variables of the positive body: annotation
    variables are opaque payload and never need guarding; variables that
    occur only under negation are excluded by rule safety anyway.

    Note a variable occurring **only in annotations** of body atoms has an
    empty set of body positions and is therefore vacuously unsafe by the
    subset test; we exclude such variables explicitly because annotations
    always carry safe payload by construction (safely annotated theories,
    Section 2)."""
    if ap is None:
        ap = affected_positions(theory)
    unsafe: set[Variable] = set()
    for variable in rule.uvars():
        body_positions = variable_body_positions(rule, variable)
        if body_positions and body_positions <= ap:
            unsafe.add(variable)
    return unsafe
