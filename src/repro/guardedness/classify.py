"""Classifiers for the guardedness lattice (Definitions 1–3, Figure 1).

Per-rule predicates::

    guarded            uvars(σ) ⊆ vars(α) for some body atom α
    frontier-guarded   fvars(σ) ⊆ vars(α) for some body atom α
    weakly guarded     uvars(σ) ∩ unsafe(σ,Σ) ⊆ vars(α) for some body atom α
    weakly f-guarded   fvars(σ) ∩ unsafe(σ,Σ) ⊆ vars(α) for some body atom α
    nearly guarded     guarded, or unsafe(σ,Σ) = evars(σ) = ∅
    nearly f-guarded   frontier-guarded, or unsafe(σ,Σ) = evars(σ) = ∅

All variable sets range over *argument* variables of positive body atoms;
annotation variables are exempt (safely annotated theories carry only safe
payload there).  For stratified theories, guards are sought among positive
body atoms and ``unsafe`` is computed on the negation-free reduct
(Section 8).

The ``classify`` entry point labels a theory with every class of Figure 1
it belongs to, plus ``datalog``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.atoms import Atom
from ..core.rules import Rule
from ..core.terms import Variable
from ..core.theory import Theory
from .affected import Position, affected_positions, unsafe_variables

__all__ = [
    "GuardGap",
    "guard_gap",
    "positive_reduct",
    "guard_atoms",
    "frontier_guard_atoms",
    "frontier_guard",
    "is_guarded_rule",
    "is_frontier_guarded_rule",
    "is_weakly_guarded_rule",
    "is_weakly_frontier_guarded_rule",
    "is_nearly_guarded_rule",
    "is_nearly_frontier_guarded_rule",
    "is_guarded",
    "is_frontier_guarded",
    "is_weakly_guarded",
    "is_weakly_frontier_guarded",
    "is_nearly_guarded",
    "is_nearly_frontier_guarded",
    "Classification",
    "classify",
    "CLASS_NAMES",
]

CLASS_NAMES = (
    "datalog",
    "guarded",
    "frontier-guarded",
    "weakly-guarded",
    "weakly-frontier-guarded",
    "nearly-guarded",
    "nearly-frontier-guarded",
)


def _atoms_covering(rule: Rule, required: set[Variable]) -> list[Atom]:
    """Positive body atoms whose argument variables cover ``required``."""
    return [
        atom
        for atom in rule.positive_body()
        if required <= atom.argument_variables()
    ]


def guard_atoms(rule: Rule) -> list[Atom]:
    """All body atoms that guard the rule (cover all universal variables)."""
    return _atoms_covering(rule, _argument_uvars(rule))


def frontier_guard_atoms(rule: Rule) -> list[Atom]:
    """All body atoms covering the (argument) frontier."""
    return _atoms_covering(rule, rule.argument_frontier())


def frontier_guard(rule: Rule) -> Optional[Atom]:
    """``fg(σ)`` — an arbitrary but fixed frontier guard (Definition 1).

    We fix the lexicographically least candidate so translations are
    deterministic.  Returns None for non-frontier-guarded rules."""
    candidates = frontier_guard_atoms(rule)
    return min(candidates) if candidates else None


def _argument_uvars(rule: Rule) -> set[Variable]:
    """Universal variables occurring in argument positions of the positive
    body (annotation-only variables are exempt from guarding)."""
    result: set[Variable] = set()
    for atom in rule.positive_body():
        result |= atom.argument_variables()
    return result


def is_guarded_rule(rule: Rule) -> bool:
    required = _argument_uvars(rule)
    if not required:
        # A rule without universal variables is trivially guarded.
        return True
    return bool(_atoms_covering(rule, required))


def is_frontier_guarded_rule(rule: Rule) -> bool:
    required = rule.argument_frontier()
    if not required:
        return True
    return bool(_atoms_covering(rule, required))


def is_weakly_guarded_rule(
    rule: Rule, theory: Theory, ap: Optional[set[Position]] = None
) -> bool:
    unsafe = unsafe_variables(rule, theory, ap)
    required = _argument_uvars(rule) & unsafe
    if not required:
        return True
    return bool(_atoms_covering(rule, required))


def is_weakly_frontier_guarded_rule(
    rule: Rule, theory: Theory, ap: Optional[set[Position]] = None
) -> bool:
    unsafe = unsafe_variables(rule, theory, ap)
    required = rule.argument_frontier() & unsafe
    if not required:
        return True
    return bool(_atoms_covering(rule, required))


def is_nearly_guarded_rule(
    rule: Rule, theory: Theory, ap: Optional[set[Position]] = None
) -> bool:
    if is_guarded_rule(rule):
        return True
    return not rule.exist_vars and not unsafe_variables(rule, theory, ap)


def is_nearly_frontier_guarded_rule(
    rule: Rule, theory: Theory, ap: Optional[set[Position]] = None
) -> bool:
    if is_frontier_guarded_rule(rule):
        return True
    return not rule.exist_vars and not unsafe_variables(rule, theory, ap)


def positive_reduct(theory: Theory) -> Theory:
    """Drop negative literals — unsafe variables are defined on this reduct
    for stratified theories (Section 8)."""
    if not theory.has_negation():
        return theory
    return theory.map_rules(
        lambda rule: Rule(rule.positive_body(), rule.head, rule.exist_vars)
    )


# Backwards-compatible private alias.
_positive_reduct = positive_reduct


@dataclass(frozen=True)
class GuardGap:
    """Why no single body atom guards a required variable set.

    ``required`` is the variable set a guard would have to cover;
    ``per_atom_missing`` lists, for every positive body atom, the required
    variables it fails to contain.  The gap is machine-checkable: each
    atom's ``missing`` entry must be non-empty, and re-deriving the
    missing set from the rule must reproduce it.
    """

    required: tuple[str, ...]
    per_atom_missing: tuple[tuple[str, tuple[str, ...]], ...]

    def to_dict(self) -> dict:
        return {
            "required": list(self.required),
            "atoms": [
                {"atom": atom, "missing": list(missing)}
                for atom, missing in self.per_atom_missing
            ],
        }


def guard_gap(rule: Rule, required: set[Variable]) -> Optional[GuardGap]:
    """Explanation variant of the ``_atoms_covering`` guard checks.

    Returns ``None`` when some positive body atom covers ``required``
    (or the set is empty — trivially guarded); otherwise a
    :class:`GuardGap` recording, per body atom, which required variables
    it misses."""
    if not required:
        return None
    if _atoms_covering(rule, required):
        return None
    per_atom = tuple(
        (
            str(atom),
            tuple(sorted(v.name for v in required - atom.argument_variables())),
        )
        for atom in rule.positive_body()
    )
    return GuardGap(tuple(sorted(v.name for v in required)), per_atom)


def is_guarded(theory: Theory) -> bool:
    return all(is_guarded_rule(rule) for rule in theory)


def is_frontier_guarded(theory: Theory) -> bool:
    return all(is_frontier_guarded_rule(rule) for rule in theory)


def is_weakly_guarded(theory: Theory) -> bool:
    reduct = _positive_reduct(theory)
    ap = affected_positions(reduct)
    return all(is_weakly_guarded_rule(rule, reduct, ap) for rule in theory)


def is_weakly_frontier_guarded(theory: Theory) -> bool:
    reduct = _positive_reduct(theory)
    ap = affected_positions(reduct)
    return all(is_weakly_frontier_guarded_rule(rule, reduct, ap) for rule in theory)


def is_nearly_guarded(theory: Theory) -> bool:
    reduct = _positive_reduct(theory)
    ap = affected_positions(reduct)
    return all(is_nearly_guarded_rule(rule, reduct, ap) for rule in theory)


def is_nearly_frontier_guarded(theory: Theory) -> bool:
    reduct = _positive_reduct(theory)
    ap = affected_positions(reduct)
    return all(is_nearly_frontier_guarded_rule(rule, reduct, ap) for rule in theory)


@dataclass(frozen=True)
class Classification:
    """Membership of a theory in each class of Figure 1."""

    datalog: bool
    guarded: bool
    frontier_guarded: bool
    weakly_guarded: bool
    weakly_frontier_guarded: bool
    nearly_guarded: bool
    nearly_frontier_guarded: bool

    def names(self) -> tuple[str, ...]:
        labels = []
        if self.datalog:
            labels.append("datalog")
        if self.guarded:
            labels.append("guarded")
        if self.frontier_guarded:
            labels.append("frontier-guarded")
        if self.weakly_guarded:
            labels.append("weakly-guarded")
        if self.weakly_frontier_guarded:
            labels.append("weakly-frontier-guarded")
        if self.nearly_guarded:
            labels.append("nearly-guarded")
        if self.nearly_frontier_guarded:
            labels.append("nearly-frontier-guarded")
        return tuple(labels)


def classify(theory: Theory) -> Classification:
    """Label a theory with every Figure-1 class it syntactically belongs to."""
    reduct = _positive_reduct(theory)
    ap = affected_positions(reduct)
    return Classification(
        datalog=theory.is_datalog(),
        guarded=is_guarded(theory),
        frontier_guarded=is_frontier_guarded(theory),
        weakly_guarded=all(
            is_weakly_guarded_rule(rule, reduct, ap) for rule in theory
        ),
        weakly_frontier_guarded=all(
            is_weakly_frontier_guarded_rule(rule, reduct, ap) for rule in theory
        ),
        nearly_guarded=all(
            is_nearly_guarded_rule(rule, reduct, ap) for rule in theory
        ),
        nearly_frontier_guarded=all(
            is_nearly_frontier_guarded_rule(rule, reduct, ap) for rule in theory
        ),
    )
