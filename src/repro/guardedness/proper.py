"""Proper theories (Definition 16).

A weakly frontier-guarded theory is *proper* when, in every relation, the
affected positions form a prefix: ``(R, i) ∉ ap(Σ)`` implies
``(R, i+1) ∉ ap(Σ)``.  Any theory becomes proper by permuting argument
positions relation by relation; the permutations must also be applied to
databases before querying and undone on output atoms.

This module computes the per-relation permutations, applies them to
theories, databases and atoms, and exposes the inverse transformation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..core.atoms import Atom
from ..core.database import Database
from ..core.rules import Rule
from ..core.theory import Theory
from .affected import Position, affected_positions

__all__ = ["ProperForm", "make_proper", "is_proper"]


@dataclass(frozen=True)
class ProperForm:
    """A properised theory plus the permutations that produced it.

    ``permutations[R][j] = i`` means: position ``j`` of the proper relation
    holds what position ``i`` of the original relation held."""

    theory: Theory
    permutations: Mapping[str, tuple[int, ...]]

    # ------------------------------------------------------------------
    def apply_to_atom(self, atom: Atom) -> Atom:
        permutation = self.permutations.get(atom.relation)
        if permutation is None:
            return atom
        return Atom(
            atom.relation,
            tuple(atom.args[i] for i in permutation),
            atom.annotation,
        )

    def undo_on_atom(self, atom: Atom) -> Atom:
        permutation = self.permutations.get(atom.relation)
        if permutation is None:
            return atom
        restored: list = [None] * len(permutation)
        for new_index, old_index in enumerate(permutation):
            restored[old_index] = atom.args[new_index]
        return Atom(atom.relation, tuple(restored), atom.annotation)

    def apply_to_database(self, database: Database) -> Database:
        result = Database(
            (self.apply_to_atom(atom) for atom in database), freeze_acdom=False
        )
        if database.acdom_frozen:
            result.freeze_acdom()
        return result

    def undo_on_database(self, database: Database) -> Database:
        result = Database(
            (self.undo_on_atom(atom) for atom in database), freeze_acdom=False
        )
        if database.acdom_frozen:
            result.freeze_acdom()
        return result


def _permute_rule(rule: Rule, permutations: Mapping[str, tuple[int, ...]]) -> Rule:
    def convert(atom: Atom) -> Atom:
        permutation = permutations.get(atom.relation)
        if permutation is None:
            return atom
        return Atom(
            atom.relation,
            tuple(atom.args[i] for i in permutation),
            atom.annotation,
        )

    body = tuple(
        literal.__class__(convert(literal.atom))
        if hasattr(literal, "atom")
        else convert(literal)
        for literal in rule.body
    )
    head = tuple(convert(atom) for atom in rule.head)
    return Rule(body, head, rule.exist_vars)


def make_proper(theory: Theory, ap: set[Position] | None = None) -> ProperForm:
    """Reorder relation positions so affected positions form a prefix.

    The reordering is stable: affected positions keep their relative order,
    then non-affected positions keep theirs (the paper's log-space
    transformation).  ``ap`` overrides the affected-position set (used with
    the coherent closure by the Theorem 2 translation)."""
    if ap is None:
        ap = affected_positions(theory)
    permutations: dict[str, tuple[int, ...]] = {}
    for name, arity, _annot in sorted(theory.relation_keys()):
        affected = [i for i in range(arity) if (name, i) in ap]
        unaffected = [i for i in range(arity) if (name, i) not in ap]
        order = tuple(affected + unaffected)
        if order != tuple(range(arity)):
            permutations[name] = order
    permuted = Theory(_permute_rule(rule, permutations) for rule in theory)
    return ProperForm(permuted, permutations)


def is_proper(theory: Theory, ap: set[Position] | None = None) -> bool:
    """Definition 16 check."""
    if ap is None:
        ap = affected_positions(theory)
    for name, arity, _annot in theory.relation_keys():
        seen_unaffected = False
        for index in range(arity):
            if (name, index) in ap:
                if seen_unaffected:
                    return False
            else:
                seen_unaffected = True
    return True
