"""High-level query answering over knowledge bases.

Bundles the Section 7 machinery into one call: given a (weakly
frontier-guarded) theory, a conjunctive query and a database, compute the
certain answers either directly (chase) or through the translation
pipeline, and optionally cross-check the two.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.database import Database
from ..core.terms import Constant
from ..core.theory import Theory
from ..chase.runner import ChaseBudget, certain_answers
from ..robustness.errors import Cancelled, DeadlineExceeded, InvalidRequestError
from ..robustness.governor import ResourceGovernor
from ..translate.pipeline import answer_query
from .cq import ConjunctiveQuery, knowledge_base_query

__all__ = ["AnswerComparison", "answer_cq", "compare_strategies"]


@dataclass
class AnswerComparison:
    """Answers from two strategies plus agreement."""

    via_chase: set[tuple[Constant, ...]]
    via_translation: set[tuple[Constant, ...]]

    @property
    def agree(self) -> bool:
        return self.via_chase == self.via_translation


def answer_cq(
    theory: Theory,
    cq: ConjunctiveQuery,
    database: Database,
    *,
    strategy: str = "auto",
    budget: Optional[ChaseBudget] = None,
    governor: Optional[ResourceGovernor] = None,
) -> set[tuple[Constant, ...]]:
    """Certain answers of a CQ over ``(Σ, D)``.

    ``strategy``: ``"chase"`` (budgeted restricted chase), ``"translate"``
    (the class-dispatched translation pipeline), or ``"auto"`` (translate,
    falling back to the chase if the theory defies classification).  The
    auto fallback never swallows a deadline or cancellation: what stopped
    the translation would equally stop the chase, so those propagate
    immediately instead of burning the remaining wall clock twice.  A
    blown *rule* budget in the translation still falls back — the chase
    has its own, independent budget."""
    query = knowledge_base_query(theory, cq)
    if strategy == "chase":
        return certain_answers(query, database, budget=budget, governor=governor)
    if strategy == "translate":
        return answer_query(query, database, budget=budget, governor=governor)
    if strategy == "auto":
        try:
            return answer_query(query, database, budget=budget, governor=governor)
        except (Cancelled, DeadlineExceeded):
            raise
        except Exception:
            return certain_answers(
                query, database, budget=budget, governor=governor
            )
    raise InvalidRequestError(f"unknown strategy {strategy!r}")


def compare_strategies(
    theory: Theory,
    cq: ConjunctiveQuery,
    database: Database,
    *,
    budget: Optional[ChaseBudget] = None,
    governor: Optional[ResourceGovernor] = None,
) -> AnswerComparison:
    """Answer by chase and by translation; report both (experiment E7)."""
    return AnswerComparison(
        via_chase=answer_cq(
            theory, cq, database, strategy="chase", budget=budget,
            governor=governor,
        ),
        via_translation=answer_cq(
            theory, cq, database, strategy="translate", budget=budget,
            governor=governor,
        ),
    )
