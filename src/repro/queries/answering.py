"""High-level query answering over knowledge bases.

Bundles the Section 7 machinery into one call: given a (weakly
frontier-guarded) theory, a conjunctive query and a database, compute the
certain answers either directly (chase) or through the translation
pipeline, and optionally cross-check the two.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.database import Database
from ..core.terms import Constant
from ..core.theory import Theory
from ..chase.runner import ChaseBudget, certain_answers
from ..translate.pipeline import answer_query
from .cq import ConjunctiveQuery, knowledge_base_query

__all__ = ["AnswerComparison", "answer_cq", "compare_strategies"]


@dataclass
class AnswerComparison:
    """Answers from two strategies plus agreement."""

    via_chase: set[tuple[Constant, ...]]
    via_translation: set[tuple[Constant, ...]]

    @property
    def agree(self) -> bool:
        return self.via_chase == self.via_translation


def answer_cq(
    theory: Theory,
    cq: ConjunctiveQuery,
    database: Database,
    *,
    strategy: str = "auto",
    budget: Optional[ChaseBudget] = None,
) -> set[tuple[Constant, ...]]:
    """Certain answers of a CQ over ``(Σ, D)``.

    ``strategy``: ``"chase"`` (budgeted restricted chase), ``"translate"``
    (the class-dispatched translation pipeline), or ``"auto"`` (translate,
    falling back to the chase if the theory defies classification)."""
    query = knowledge_base_query(theory, cq)
    if strategy == "chase":
        return certain_answers(query, database, budget=budget)
    if strategy == "translate":
        return answer_query(query, database, budget=budget)
    if strategy == "auto":
        try:
            return answer_query(query, database, budget=budget)
        except Exception:
            return certain_answers(query, database, budget=budget)
    raise ValueError(f"unknown strategy {strategy!r}")


def compare_strategies(
    theory: Theory,
    cq: ConjunctiveQuery,
    database: Database,
    *,
    budget: Optional[ChaseBudget] = None,
) -> AnswerComparison:
    """Answer by chase and by translation; report both (experiment E7)."""
    return AnswerComparison(
        via_chase=answer_cq(theory, cq, database, strategy="chase", budget=budget),
        via_translation=answer_cq(
            theory, cq, database, strategy="translate", budget=budget
        ),
    )
