"""Conjunctive queries and knowledge-base query answering (Section 7)."""

from .answering import AnswerComparison, answer_cq, compare_strategies
from .containment import (
    canonical_database,
    cq_contained_in,
    cq_equivalent,
    minimize_cq,
)
from .cq import ConjunctiveQuery, cq_to_rule, evaluate_cq, knowledge_base_query

__all__ = [
    "AnswerComparison",
    "ConjunctiveQuery",
    "answer_cq",
    "canonical_database",
    "compare_strategies",
    "cq_contained_in",
    "cq_equivalent",
    "minimize_cq",
    "cq_to_rule",
    "evaluate_cq",
    "knowledge_base_query",
]
