"""Conjunctive-query containment and equivalence.

Classic Chandra–Merlin: ``q1 ⊆ q2`` iff there is a homomorphism from
``q2`` into the *canonical database* of ``q1`` mapping answer variables to
answer variables pointwise.  Used by the expressiveness experiments to
compare query reformulations, and generally handy next to a CQ type.
"""

from __future__ import annotations

from ..core.database import Database
from ..core.homomorphism import first_homomorphism
from ..core.terms import Null, Term, Variable
from .cq import ConjunctiveQuery

__all__ = ["canonical_database", "cq_contained_in", "cq_equivalent", "minimize_cq"]


def canonical_database(cq: ConjunctiveQuery) -> tuple[Database, dict[Variable, Term]]:
    """Freeze the query: variables become fresh labeled nulls.

    Returns the database and the variable → frozen-term mapping."""
    frozen: dict[Variable, Term] = {}
    for index, variable in enumerate(
        sorted(
            {v for atom in cq.atoms for v in atom.variables()},
            key=lambda v: v.name,
        )
    ):
        frozen[variable] = Null(f"frz{index}")
    atoms = [atom.substitute(dict(frozen)) for atom in cq.atoms]
    return Database(atoms, freeze_acdom=False), frozen


def cq_contained_in(first: ConjunctiveQuery, second: ConjunctiveQuery) -> bool:
    """``first ⊆ second`` — every answer of ``first`` is one of ``second``
    on every database (Chandra–Merlin)."""
    if first.arity != second.arity:
        raise ValueError("containment requires equal arities")
    frozen_db, frozen = canonical_database(first)
    # answer variables must map pointwise onto the frozen answer tuple;
    # a repeated variable in `second` must receive a consistent image
    bound: dict[Variable, Term] = {}
    for second_var, first_var in zip(
        second.answer_variables, first.answer_variables
    ):
        target = frozen[first_var]
        if bound.get(second_var, target) != target:
            return False
        bound[second_var] = target
    assignment = first_homomorphism(second.atoms, frozen_db, partial=bound)
    return assignment is not None


def cq_equivalent(first: ConjunctiveQuery, second: ConjunctiveQuery) -> bool:
    return cq_contained_in(first, second) and cq_contained_in(second, first)


def minimize_cq(cq: ConjunctiveQuery) -> ConjunctiveQuery:
    """A minimal equivalent CQ (drop atoms while equivalence holds).

    The result is the query's core up to renaming — the canonical form
    for equivalence checks."""
    atoms = list(cq.atoms)
    changed = True
    while changed:
        changed = False
        for index in range(len(atoms)):
            candidate_atoms = atoms[:index] + atoms[index + 1 :]
            if not candidate_atoms:
                continue
            try:
                candidate = ConjunctiveQuery(cq.answer_variables, tuple(candidate_atoms))
            except ValueError:
                continue  # dropping the atom would unbind an answer variable
            if cq_equivalent(cq, candidate):
                atoms = candidate_atoms
                changed = True
                break
    return ConjunctiveQuery(cq.answer_variables, tuple(atoms))
