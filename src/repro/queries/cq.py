"""Conjunctive queries over knowledge bases (Section 7).

A knowledge-base query is ``(Σ ∪ {α → Q(~x)}, Q)`` where ``Σ`` is a weakly
frontier-guarded theory, ``α`` a conjunction of atoms and ``~x`` the
answer variables.  The rule ``α → Q(~x)`` need not be weakly
frontier-guarded; the paper's ``ACDom`` padding makes it so::

    α ∧ ACDom(x1) ∧ … ∧ ACDom(xn) → Q(x1, …, xn)

because every ``xi`` then has a non-affected body position and is safe.
This module provides the CQ data type, the padding construction, and
direct CQ evaluation against a database (homomorphism semantics).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.atoms import Atom
from ..core.database import Database
from ..core.homomorphism import homomorphisms
from ..core.rules import Rule
from ..core.terms import Term, Variable
from ..core.theory import ACDOM, Query, Theory

__all__ = ["ConjunctiveQuery", "cq_to_rule", "knowledge_base_query", "evaluate_cq"]


@dataclass(frozen=True)
class ConjunctiveQuery:
    """``q(~x) ← α`` — answer variables plus a conjunction of atoms."""

    answer_variables: tuple[Variable, ...]
    atoms: tuple[Atom, ...]

    def __post_init__(self) -> None:
        body_variables: set[Variable] = set()
        for atom in self.atoms:
            body_variables |= atom.variables()
        missing = set(self.answer_variables) - body_variables
        if missing:
            names = ", ".join(sorted(v.name for v in missing))
            raise ValueError(f"unsafe answer variables: {names}")

    @property
    def arity(self) -> int:
        return len(self.answer_variables)

    def is_boolean(self) -> bool:
        return not self.answer_variables

    def __str__(self) -> str:
        head = ", ".join(v.name for v in self.answer_variables)
        body = ", ".join(str(atom) for atom in self.atoms)
        return f"q({head}) <- {body}"


def cq_to_rule(
    cq: ConjunctiveQuery, output: str, *, pad_acdom: bool = True
) -> Rule:
    """Turn a CQ into the rule ``α ∧ ACDom(~x) → Q(~x)`` (Section 7).

    The padding makes the rule weakly frontier-guarded in any theory — all
    answer variables become safe."""
    body: list[Atom] = list(cq.atoms)
    if pad_acdom:
        body.extend(Atom(ACDOM, (v,)) for v in cq.answer_variables)
    return Rule(tuple(body), (Atom(output, cq.answer_variables),))


def knowledge_base_query(
    theory: Theory,
    cq: ConjunctiveQuery,
    *,
    output: str = "QueryOut",
) -> Query:
    """Assemble ``(Σ ∪ {α ∧ ACDom(~x) → Q(~x)}, Q)``."""
    if output in theory.relations():
        raise ValueError(f"output relation {output} already used by Σ")
    extended = theory.extend([cq_to_rule(cq, output)])
    return Query(extended, output)


def evaluate_cq(
    cq: ConjunctiveQuery, database: Database
) -> set[tuple[Term, ...]]:
    """Direct CQ evaluation (no rules): all homomorphism images of the
    answer tuple — including nulls; filter if certain answers are meant."""
    results: set[tuple[Term, ...]] = set()
    # cq.atoms is passed as the tuple it already is — repeated evaluations
    # of the same query hit the same cached join plan.
    for assignment in homomorphisms(cq.atoms, database):
        results.add(tuple(assignment[v] for v in cq.answer_variables))
    return results
