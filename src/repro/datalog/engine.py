"""Semi-naive bottom-up Datalog evaluation with stratified negation.

This is the target runtime for the paper's translations: every PTime
fragment compiles to plain Datalog (Theorems 1–3) which this engine
evaluates in polynomial time in the database.

Evaluation is stratum by stratum.  Within a stratum, rules whose bodies
mention relations defined in the same stratum are iterated semi-naively:
each iteration forces one such body atom to match the *delta* (atoms new
in the previous iteration) while the remaining atoms match the full
database.  Negated literals always refer to lower strata (or EDB), whose
extensions are already final, so a simple absence check is sound.

The built-in ``ACDom`` relation is handled virtually by the homomorphism
layer; its extension is the (frozen) active constant domain of the input
database.
"""

from __future__ import annotations

from collections import defaultdict
from contextlib import nullcontext
from typing import Optional

from ..core.atoms import Atom
from ..core.database import Database
from ..core.homomorphism import homomorphisms
from ..core.rules import Rule
from ..core.terms import Constant
from ..core.theory import Query, Theory
from ..obs.runtime import current as _obs_current
from .stratification import Stratification, stratify

__all__ = ["evaluate", "datalog_answers", "DatalogError"]


class DatalogError(ValueError):
    """Raised when a program is not plain (stratified) Datalog."""


def _check_program(program: Theory) -> None:
    for rule in program:
        if not rule.is_datalog():
            raise DatalogError(
                f"existential rule in a Datalog program: {rule}"
            )


def _negation_satisfied(rule: Rule, assignment, database: Database) -> bool:
    for negated in rule.negative_body():
        if negated.atom.substitute(assignment) in database:
            return False
    return True


def _fire(
    rule: Rule,
    assignment,
    database: Database,
    new_atoms: set[Atom],
) -> None:
    for atom in rule.head:
        grounded = atom.substitute(assignment)
        if grounded not in database:
            new_atoms.add(grounded)


def _evaluate_stratum(stratum: Theory, database: Database, obs=None) -> None:
    """Evaluate one stratum to fixpoint, mutating ``database``."""
    defined_here = {atom.relation for rule in stratum for atom in rule.head}

    # Initial round: every rule fires against the full database.
    delta: set[Atom] = set()
    for rule in stratum:
        body = list(rule.positive_body())
        for assignment in homomorphisms(body, database):
            if _negation_satisfied(rule, assignment, database):
                _fire(rule, assignment, database, delta)
    for atom in delta:
        database.add(atom)
    if obs is not None:
        obs.observe("delta_size", len(delta))
        obs.inc("atoms_derived", len(delta))

    # Precompute, per rule, the body-atom indices matching this stratum's
    # IDB relations — the candidates for delta pinning.
    recursive_rules: list[tuple[Rule, list[int]]] = []
    for rule in stratum:
        body = rule.positive_body()
        indices = [
            index
            for index, atom in enumerate(body)
            if atom.relation in defined_here
        ]
        if indices:
            recursive_rules.append((rule, indices))

    while delta:
        delta_by_relation: dict[str, list[Atom]] = defaultdict(list)
        for atom in delta:
            delta_by_relation[atom.relation].append(atom)
        next_delta: set[Atom] = set()
        for rule, indices in recursive_rules:
            body = list(rule.positive_body())
            for index in indices:
                candidates = delta_by_relation.get(body[index].relation)
                if not candidates:
                    continue
                for assignment in homomorphisms(
                    body, database, forced=(index, candidates)
                ):
                    if _negation_satisfied(rule, assignment, database):
                        _fire(rule, assignment, database, next_delta)
        for atom in next_delta:
            database.add(atom)
        delta = next_delta
        if obs is not None:
            obs.observe("delta_size", len(delta))
            obs.inc("atoms_derived", len(delta))


def _evaluate_stratum_naive(stratum: Theory, database: Database, obs=None) -> None:
    """Reference naive evaluation: fire every rule against the full
    database until nothing changes.  Quadratically slower than semi-naive
    on recursive programs — kept for the ablation benchmark and as a
    correctness oracle."""
    changed = True
    while changed:
        changed = False
        new_atoms: set[Atom] = set()
        for rule in stratum:
            body = list(rule.positive_body())
            for assignment in homomorphisms(body, database):
                if _negation_satisfied(rule, assignment, database):
                    _fire(rule, assignment, database, new_atoms)
        added = 0
        for atom in new_atoms:
            if database.add(atom):
                changed = True
                added += 1
        if obs is not None:
            obs.observe("delta_size", added)
            obs.inc("atoms_derived", added)


def evaluate(
    program: Theory,
    database: Database,
    *,
    stratification: Optional[Stratification] = None,
    strategy: str = "seminaive",
) -> Database:
    """Evaluate a stratified Datalog program; returns the full fixpoint.

    The input database is not mutated.  Negation must be stratified; a
    :class:`~repro.datalog.stratification.NotStratifiedError` is raised
    otherwise.  ``strategy`` selects semi-naive (default) or the naive
    reference loop."""
    if strategy not in ("seminaive", "naive"):
        raise ValueError(f"unknown evaluation strategy {strategy!r}")
    _check_program(program)
    if stratification is None:
        stratification = stratify(program)
    result = database.copy()
    result.ensure_acdom_frozen()
    obs = _obs_current()
    run_span = (
        obs.span(
            "datalog.evaluate",
            rules=len(program),
            strata=len(stratification),
            strategy=strategy,
        )
        if obs is not None
        else nullcontext()
    )
    with run_span:
        for index, stratum in enumerate(stratification):
            stratum_span = (
                obs.span("datalog.stratum", index=index, rules=len(stratum))
                if obs is not None
                else nullcontext()
            )
            with stratum_span:
                if strategy == "naive":
                    _evaluate_stratum_naive(stratum, result, obs)
                else:
                    _evaluate_stratum(stratum, result, obs)
    return result


def datalog_answers(
    query: Query,
    database: Database,
) -> set[tuple[Constant, ...]]:
    """``ans((Σ,Q), D)`` for a Datalog query — all-constant output tuples."""
    fixpoint = evaluate(query.theory, database)
    answers: set[tuple[Constant, ...]] = set()
    for key in fixpoint.relations():
        if key[0] != query.output:
            continue
        for atom in fixpoint.atoms_for(key):
            if all(isinstance(term, Constant) for term in atom.args):
                answers.add(tuple(atom.args))  # type: ignore[arg-type]
    return answers
