"""Semi-naive bottom-up Datalog evaluation with stratified negation.

This is the target runtime for the paper's translations: every PTime
fragment compiles to plain Datalog (Theorems 1–3) which this engine
evaluates in polynomial time in the database.

Evaluation is stratum by stratum.  Within a stratum, rules whose bodies
mention relations defined in the same stratum are iterated semi-naively:
each iteration forces one such body atom to match the *delta* (atoms new
in the previous iteration) while the remaining atoms match the full
database.  Negated literals always refer to lower strata (or EDB), whose
extensions are already final, so a simple absence check is sound.

The built-in ``ACDom`` relation is handled virtually by the homomorphism
layer; its extension is the (frozen) active constant domain of the input
database.
"""

from __future__ import annotations

from collections import defaultdict
from contextlib import nullcontext
from typing import Optional

from ..core.atoms import Atom
from ..core.database import Database
from ..core.homomorphism import _naive_requested, homomorphisms
from ..core.plan import derive_rule_rows
from ..core.store import ColumnDelta
from ..core.rules import Rule
from ..core.terms import Constant
from ..core.theory import Query, Theory
from ..obs.runtime import current as _obs_current
from ..robustness.errors import InvalidTheoryError, exhausted_error
from ..robustness.governor import ResourceGovernor, resolve_governor
from ..robustness.outcome import Outcome
from .stratification import Stratification, stratify

__all__ = ["evaluate", "try_evaluate", "datalog_answers", "DatalogError"]


class DatalogError(InvalidTheoryError):
    """Raised when a program is not plain (stratified) Datalog."""


def _check_program(program: Theory) -> None:
    for rule in program:
        if not rule.is_datalog():
            raise DatalogError(
                f"existential rule in a Datalog program: {rule}"
            )


def _negation_satisfied(rule: Rule, assignment, database: Database) -> bool:
    for negated in rule.negative_body():
        if negated.atom.substitute(assignment) in database:
            return False
    return True


def _fire(
    rule: Rule,
    assignment,
    database: Database,
    new_atoms: set[Atom],
) -> None:
    for atom in rule.head:
        grounded = atom.substitute(assignment)
        if grounded not in database:
            new_atoms.add(grounded)


def _tick(
    governor: Optional[ResourceGovernor],
    iterations: int,
    max_iterations: Optional[int],
) -> Optional[str]:
    """One fixpoint iteration: returns the exhaustion reason or ``None``."""
    if max_iterations is not None and iterations > max_iterations:
        return "max_iterations"
    if governor is not None:
        return governor.tick()
    return None


def _ingest_delta(database: Database, delta: set[Atom]) -> dict[str, list]:
    """Add the delta atoms and return them grouped by relation *name* for
    delta pinning.

    On the dict store the groups are plain atom lists.  On the columnar
    store each group is a list of :class:`~repro.core.store.ColumnDelta`
    row blocks obtained by an ordinal **range scan**: rows are append-only
    and deduplicated, so the atoms added this iteration are exactly the
    ordinals ``[mark, n_rows)`` of each touched relation — no re-boxing,
    and the join executor consumes the encoded rows directly.
    """
    groups: dict[str, list] = defaultdict(list)
    if not database._columnar:
        for atom in delta:
            database.add(atom)
            groups[atom.relation].append(atom)
        return groups
    marks: dict = {}
    for atom in delta:
        key = atom.relation_key
        if key not in marks:
            marks[key] = database.relation_size(key)
        database.add(atom)
    for key, mark in marks.items():
        relation = database._relations[key]
        rows = relation.rows_between(mark, relation.n_rows)
        if rows:
            groups[key[0]].append(ColumnDelta(key, rows))
    return groups


def _ingest_mixed(
    database: Database, staged: dict, delta: set[Atom]
) -> tuple[dict[str, list], int]:
    """Columnar ingestion for a mix of staged ID rows (from the row-path
    rule executors) and boxed atoms (from negation rules).

    Marks every touched relation before mutating, applies both payloads
    (each deduplicates against the relation), and returns the range-scan
    delta groups plus the number of genuinely new facts."""
    marks: dict = {}
    for key in staged:
        marks[key] = database.relation_size(key)
    for atom in delta:
        key = atom.relation_key
        if key not in marks:
            marks[key] = database.relation_size(key)
    added = 0
    add_row = database._add_row
    for key, rows in staged.items():
        for row in rows:
            if add_row(key, row):
                added += 1
    for atom in delta:
        if database.add(atom):
            added += 1
    groups: dict[str, list] = defaultdict(list)
    for key, mark in marks.items():
        relation = database._relations.get(key)
        if relation is None:
            continue
        rows = relation.rows_between(mark, relation.n_rows)
        if rows:
            groups[key[0]].append(ColumnDelta(key, rows))
    return groups, added


def _evaluate_stratum(
    stratum: Theory,
    database: Database,
    obs=None,
    governor: Optional[ResourceGovernor] = None,
    max_iterations: Optional[int] = None,
) -> Optional[str]:
    """Evaluate one stratum to fixpoint, mutating ``database``.

    Returns the exhaustion reason if a governor or iteration budget cut
    the stratum short (the database then holds a sound prefix of the
    fixpoint), ``None`` on a reached fixpoint."""
    defined_here = {atom.relation for rule in stratum for atom in rule.head}
    iterations = 1
    reason = _tick(governor, iterations, max_iterations)
    if reason is not None:
        return reason

    # Bodies are computed once per stratum: the same tuple objects feed
    # every fixpoint iteration, so the join-plan cache is keyed stably.
    bodies: list[tuple[Atom, ...]] = [
        tuple(rule.positive_body()) for rule in stratum
    ]

    # On columnar stores, negation-free rules fire through compiled
    # ID-space executors: head rows are staged encoded, and nothing is
    # boxed until a caller decodes.  Negation rules (they must consult
    # the boxed membership of lower strata mid-match), instrumented
    # runs, and REPRO_NAIVE_JOIN reference runs keep the assignment
    # path.
    row_path = (
        database._columnar and obs is None and not _naive_requested()
    )
    in_rows = [
        row_path and not rule.negative_body() for rule in stratum
    ]
    heads: list[tuple[Atom, ...]] = [tuple(rule.head) for rule in stratum]

    # Initial round: every rule fires against the full database.
    staged: dict = {}
    delta: set[Atom] = set()
    for rule_index, (rule, body) in enumerate(zip(stratum, bodies)):
        if in_rows[rule_index]:
            derive_rule_rows(body, heads[rule_index], database, None, staged)
        else:
            for assignment in homomorphisms(body, database):
                if _negation_satisfied(rule, assignment, database):
                    _fire(rule, assignment, database, delta)
    if row_path:
        delta_groups, added = _ingest_mixed(database, staged, delta)
    else:
        added = len(delta)
        delta_groups = _ingest_delta(database, delta)
    if obs is not None:
        obs.observe("delta_size", added)
        obs.inc("atoms_derived", added)

    # Precompute, per rule, the body-atom indices matching this stratum's
    # IDB relations — the candidates for delta pinning.
    recursive_rules: list[tuple] = []
    for rule_index, (rule, body) in enumerate(zip(stratum, bodies)):
        indices = [
            index
            for index, atom in enumerate(body)
            if atom.relation in defined_here
        ]
        if indices:
            recursive_rules.append(
                (rule, body, indices, in_rows[rule_index], heads[rule_index])
            )

    while delta_groups:
        iterations += 1
        reason = _tick(governor, iterations, max_iterations)
        if reason is not None:
            return reason
        staged = {}
        next_delta: set[Atom] = set()
        for rule, body, indices, use_rows, rule_heads in recursive_rules:
            for index in indices:
                candidates = delta_groups.get(body[index].relation)
                if not candidates:
                    continue
                if use_rows:
                    derive_rule_rows(
                        body, rule_heads, database, (index, candidates), staged
                    )
                    continue
                for assignment in homomorphisms(
                    body, database, forced=(index, candidates)
                ):
                    if _negation_satisfied(rule, assignment, database):
                        _fire(rule, assignment, database, next_delta)
        if row_path:
            delta_groups, added = _ingest_mixed(database, staged, next_delta)
        else:
            added = len(next_delta)
            delta_groups = _ingest_delta(database, next_delta)
        if obs is not None:
            obs.observe("delta_size", added)
            obs.inc("atoms_derived", added)
    return None


def _evaluate_stratum_naive(
    stratum: Theory,
    database: Database,
    obs=None,
    governor: Optional[ResourceGovernor] = None,
    max_iterations: Optional[int] = None,
) -> Optional[str]:
    """Reference naive evaluation: fire every rule against the full
    database until nothing changes.  Quadratically slower than semi-naive
    on recursive programs — kept for the ablation benchmark and as a
    correctness oracle."""
    changed = True
    iterations = 0
    while changed:
        iterations += 1
        reason = _tick(governor, iterations, max_iterations)
        if reason is not None:
            return reason
        changed = False
        new_atoms: set[Atom] = set()
        for rule in stratum:
            body = tuple(rule.positive_body())
            for assignment in homomorphisms(body, database):
                if _negation_satisfied(rule, assignment, database):
                    _fire(rule, assignment, database, new_atoms)
        added = 0
        for atom in new_atoms:
            if database.add(atom):
                changed = True
                added += 1
        if obs is not None:
            obs.observe("delta_size", added)
            obs.inc("atoms_derived", added)
    return None


def try_evaluate(
    program: Theory,
    database: Database,
    *,
    stratification: Optional[Stratification] = None,
    strategy: str = "seminaive",
    governor: Optional[ResourceGovernor] = None,
    max_iterations: Optional[int] = None,
) -> Outcome[Database]:
    """Graceful evaluation of a stratified Datalog program.

    A governor (deadline/cancellation, ticked once per fixpoint
    iteration) or ``max_iterations`` (per stratum) can cut the run short;
    the outcome then carries the partial fixpoint with an ``exhausted``
    reason.  Partial fixpoints are *sound but incomplete*: evaluation
    stops at the first exhausted stratum, so every derived atom was
    produced with negation checked only against completed lower strata.
    """
    if strategy not in ("seminaive", "naive"):
        raise InvalidTheoryError(f"unknown evaluation strategy {strategy!r}")
    _check_program(program)
    if stratification is None:
        stratification = stratify(program)
    governor = resolve_governor(governor)
    result = database.copy()
    result.ensure_acdom_frozen()
    obs = _obs_current()
    run_span = (
        obs.span(
            "datalog.evaluate",
            rules=len(program),
            strata=len(stratification),
            strategy=strategy,
        )
        if obs is not None
        else nullcontext()
    )
    exhausted: Optional[str] = None
    with run_span:
        for index, stratum in enumerate(stratification):
            stratum_span = (
                obs.span("datalog.stratum", index=index, rules=len(stratum))
                if obs is not None
                else nullcontext()
            )
            with stratum_span:
                if strategy == "naive":
                    exhausted = _evaluate_stratum_naive(
                        stratum, result, obs, governor, max_iterations
                    )
                else:
                    exhausted = _evaluate_stratum(
                        stratum, result, obs, governor, max_iterations
                    )
            if exhausted is not None:
                if obs is not None:
                    obs.inc("datalog.exhausted")
                break
    return Outcome(
        value=result,
        complete=exhausted is None,
        exhausted=exhausted,
        sound=True,
        snapshot=None,
    )


def evaluate(
    program: Theory,
    database: Database,
    *,
    stratification: Optional[Stratification] = None,
    strategy: str = "seminaive",
    governor: Optional[ResourceGovernor] = None,
    max_iterations: Optional[int] = None,
) -> Database:
    """Evaluate a stratified Datalog program; returns the full fixpoint.

    The input database is not mutated.  Negation must be stratified; a
    :class:`~repro.datalog.stratification.NotStratifiedError` is raised
    otherwise.  ``strategy`` selects semi-naive (default) or the naive
    reference loop.  On governor/iteration exhaustion raises the typed
    error (partial fixpoint on its ``outcome``); use :func:`try_evaluate`
    for the non-raising variant."""
    outcome = try_evaluate(
        program,
        database,
        stratification=stratification,
        strategy=strategy,
        governor=governor,
        max_iterations=max_iterations,
    )
    if not outcome.complete:
        reason = outcome.exhausted or "budget"
        raise exhausted_error(
            reason, f"datalog evaluation exhausted ({reason})", outcome
        )
    return outcome.value


def datalog_answers(
    query: Query,
    database: Database,
    *,
    governor: Optional[ResourceGovernor] = None,
) -> set[tuple[Constant, ...]]:
    """``ans((Σ,Q), D)`` for a Datalog query — all-constant output tuples."""
    fixpoint = evaluate(query.theory, database, governor=governor)
    answers: set[tuple[Constant, ...]] = set()
    for key in fixpoint.relations():
        if key[0] != query.output:
            continue
        for atom in fixpoint.atoms_for(key):
            if all(isinstance(term, Constant) for term in atom.args):
                answers.add(tuple(atom.args))  # type: ignore[arg-type]
    return answers
