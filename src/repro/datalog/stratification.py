"""Stratification of theories with negation (Definition 22).

A theory is stratified when it can be partitioned into ``Σ1, …, Σn`` such
that for every relation ``A`` used positively in stratum ``i``, no later
stratum defines ``A``, and for every relation used negatively in stratum
``i``, no stratum ``≥ i`` defines ``A``.  Equivalently, the predicate
dependency graph has no cycle through a negative edge; stratum numbers are
then obtained from the usual longest-negative-path labeling.

The algorithm works for arbitrary existential theories, not just Datalog —
stratified *existential* rules are exactly what Theorem 5 needs.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from ..core.rules import Rule
from ..core.theory import ACDOM, Theory

__all__ = [
    "NotStratifiedError",
    "Stratification",
    "stratify",
    "is_stratified",
    "is_semipositive",
    "edb_relations",
    "idb_relations",
]


class NotStratifiedError(ValueError):
    """The theory has a cycle through negation."""


@dataclass(frozen=True)
class Stratification:
    """An ordered partition of a theory's rules."""

    strata: tuple[Theory, ...]
    relation_stratum: dict[str, int]

    def __len__(self) -> int:
        return len(self.strata)

    def __iter__(self):
        return iter(self.strata)


def idb_relations(theory: Theory) -> set[str]:
    """Relations defined (appearing in a head) by the theory."""
    defined: set[str] = set()
    for rule in theory:
        for atom in rule.head:
            defined.add(atom.relation)
    return defined


def edb_relations(theory: Theory) -> set[str]:
    """Relations only read, never defined (the input signature)."""
    return {name for name in theory.relations() if name} - idb_relations(theory)


def _dependency_edges(theory: Theory):
    """Yield ``(body_relation, head_relation, negative?)`` triples."""
    for rule in theory:
        head_relations = {atom.relation for atom in rule.head}
        for literal in rule.body:
            negative = hasattr(literal, "atom")
            relation = literal.atom.relation if negative else literal.relation
            for head_relation in head_relations:
                yield relation, head_relation, negative


def stratify(theory: Theory) -> Stratification:
    """Compute a stratification or raise :class:`NotStratifiedError`.

    Strata are numbered from 0; rules land in the stratum of their head
    relation (the maximum over head atoms for multi-head rules).  ``ACDom``
    and EDB relations live in stratum 0."""
    relations = theory.relations() | {ACDOM}
    stratum: dict[str, int] = {name: 0 for name in relations}
    edges = list(_dependency_edges(theory))
    # Bellman-Ford-style relaxation; a change after |relations| full passes
    # means a negative cycle.
    for iteration in range(len(relations) + 1):
        changed = False
        for body_relation, head_relation, negative in edges:
            required = stratum[body_relation] + (1 if negative else 0)
            if stratum[head_relation] < required:
                stratum[head_relation] = required
                changed = True
        if not changed:
            break
    else:
        pass
    if changed:
        raise NotStratifiedError(
            "theory is not stratified: cycle through negation detected"
        )

    buckets: dict[int, list[Rule]] = defaultdict(list)
    for rule in theory:
        level = max(stratum[atom.relation] for atom in rule.head)
        buckets[level].append(rule)
    ordered_levels = sorted(buckets)
    strata = tuple(Theory(buckets[level]) for level in ordered_levels)
    return Stratification(strata, dict(stratum))


def is_stratified(theory: Theory) -> bool:
    try:
        stratify(theory)
    except NotStratifiedError:
        return False
    return True


def is_semipositive(theory: Theory) -> bool:
    """Semipositive = negation only on EDB relations (n = 1 in Def. 22)."""
    edb = edb_relations(theory) | {ACDOM}
    for rule in theory:
        for literal in rule.body:
            if hasattr(literal, "atom") and literal.atom.relation not in edb:
                return False
    return True
