"""Stratification of theories with negation (Definition 22).

A theory is stratified when it can be partitioned into ``Σ1, …, Σn`` such
that for every relation ``A`` used positively in stratum ``i``, no later
stratum defines ``A``, and for every relation used negatively in stratum
``i``, no stratum ``≥ i`` defines ``A``.  Equivalently, the predicate
dependency graph has no cycle through a negative edge; stratum numbers are
then obtained from the usual longest-negative-path labeling.

The algorithm works for arbitrary existential theories, not just Datalog —
stratified *existential* rules are exactly what Theorem 5 needs.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Optional

from ..core.rules import Rule
from ..core.theory import ACDOM, Theory

__all__ = [
    "DependencyEdge",
    "NotStratifiedError",
    "Stratification",
    "dependency_edges",
    "find_negation_cycle",
    "stratify",
    "is_stratified",
    "is_semipositive",
    "edb_relations",
    "idb_relations",
]

#: One edge of the predicate dependency graph:
#: (body relation, head relation, negative?, index of the inducing rule).
DependencyEdge = tuple[str, str, bool, int]


class NotStratifiedError(ValueError):
    """The theory has a cycle through negation.

    ``cycle`` (when available) is the witness: a closed
    :data:`DependencyEdge` list with at least one negative edge."""

    def __init__(
        self, message: str, cycle: Optional[list[DependencyEdge]] = None
    ) -> None:
        super().__init__(message)
        self.cycle = cycle


@dataclass(frozen=True)
class Stratification:
    """An ordered partition of a theory's rules."""

    strata: tuple[Theory, ...]
    relation_stratum: dict[str, int]

    def __len__(self) -> int:
        return len(self.strata)

    def __iter__(self):
        return iter(self.strata)


def idb_relations(theory: Theory) -> set[str]:
    """Relations defined (appearing in a head) by the theory."""
    defined: set[str] = set()
    for rule in theory:
        for atom in rule.head:
            defined.add(atom.relation)
    return defined


def edb_relations(theory: Theory) -> set[str]:
    """Relations only read, never defined (the input signature)."""
    return {name for name in theory.relations() if name} - idb_relations(theory)


def dependency_edges(theory: Theory) -> list[DependencyEdge]:
    """The predicate dependency graph as explicit, attributable edges."""
    edges: list[DependencyEdge] = []
    for index, rule in enumerate(theory):
        head_relations = {atom.relation for atom in rule.head}
        for literal in rule.body:
            negative = hasattr(literal, "atom")
            relation = literal.atom.relation if negative else literal.relation
            for head_relation in sorted(head_relations):
                edges.append((relation, head_relation, negative, index))
    return edges


def find_negation_cycle(theory: Theory) -> Optional[list[DependencyEdge]]:
    """A witness cycle through a negative edge, or ``None`` if stratified.

    Returns a closed edge list: the head relation of each edge is the
    body relation of the next, the last edge wraps to the first, and at
    least one edge is negative.  Every edge is induced by the rule whose
    index it carries, so the witness can be replayed against the theory."""
    edges = dependency_edges(theory)
    successors: dict[str, list[DependencyEdge]] = defaultdict(list)
    for edge in edges:
        successors[edge[0]].append(edge)

    def path(start: str, goal: str) -> Optional[list[DependencyEdge]]:
        """Edge path start → goal (empty when start == goal)."""
        if start == goal:
            return []
        parents: dict[str, DependencyEdge] = {}
        queue, seen = [start], {start}
        while queue:
            node = queue.pop(0)
            for edge in successors.get(node, ()):
                target = edge[1]
                if target in seen:
                    continue
                parents[target] = edge
                if target == goal:
                    chain = [edge]
                    while chain[0][0] != start:
                        chain.insert(0, parents[chain[0][0]])
                    return chain
                seen.add(target)
                queue.append(target)
        return None

    for edge in edges:
        if not edge[2]:
            continue
        closing = path(edge[1], edge[0])
        if closing is not None:
            return [edge] + closing
    return None


def stratify(theory: Theory) -> Stratification:
    """Compute a stratification or raise :class:`NotStratifiedError`.

    Strata are numbered from 0; rules land in the stratum of their head
    relation (the maximum over head atoms for multi-head rules).  ``ACDom``
    and EDB relations live in stratum 0."""
    relations = theory.relations() | {ACDOM}
    stratum: dict[str, int] = {name: 0 for name in relations}
    edges = dependency_edges(theory)
    # Bellman-Ford-style relaxation; a change after |relations| full passes
    # means a negative cycle.
    for iteration in range(len(relations) + 1):
        changed = False
        for body_relation, head_relation, negative, _rule in edges:
            required = stratum[body_relation] + (1 if negative else 0)
            if stratum[head_relation] < required:
                stratum[head_relation] = required
                changed = True
        if not changed:
            break
    else:
        pass
    if changed:
        raise NotStratifiedError(
            "theory is not stratified: cycle through negation detected",
            cycle=find_negation_cycle(theory),
        )

    buckets: dict[int, list[Rule]] = defaultdict(list)
    for rule in theory:
        level = max(stratum[atom.relation] for atom in rule.head)
        buckets[level].append(rule)
    ordered_levels = sorted(buckets)
    strata = tuple(Theory(buckets[level]) for level in ordered_levels)
    return Stratification(strata, dict(stratum))


def is_stratified(theory: Theory) -> bool:
    try:
        stratify(theory)
    except NotStratifiedError:
        return False
    return True


def is_semipositive(theory: Theory) -> bool:
    """Semipositive = negation only on EDB relations (n = 1 in Def. 22)."""
    edb = edb_relations(theory) | {ACDOM}
    for rule in theory:
        for literal in rule.body:
            if hasattr(literal, "atom") and literal.atom.relation not in edb:
                return False
    return True
