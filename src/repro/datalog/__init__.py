"""Datalog: semi-naive engine, stratification, semipositive programs."""

from .engine import DatalogError, datalog_answers, evaluate
from .stratification import (
    NotStratifiedError,
    Stratification,
    edb_relations,
    idb_relations,
    is_semipositive,
    is_stratified,
    stratify,
)

__all__ = [
    "DatalogError",
    "NotStratifiedError",
    "Stratification",
    "datalog_answers",
    "edb_relations",
    "evaluate",
    "idb_relations",
    "is_semipositive",
    "is_stratified",
    "stratify",
]
