"""Datalog: semi-naive engine, stratification, semipositive programs."""

from .engine import DatalogError, datalog_answers, evaluate
from .stratification import (
    DependencyEdge,
    NotStratifiedError,
    Stratification,
    dependency_edges,
    edb_relations,
    find_negation_cycle,
    idb_relations,
    is_semipositive,
    is_stratified,
    stratify,
)

__all__ = [
    "DatalogError",
    "DependencyEdge",
    "NotStratifiedError",
    "Stratification",
    "datalog_answers",
    "dependency_edges",
    "edb_relations",
    "evaluate",
    "find_negation_cycle",
    "idb_relations",
    "is_semipositive",
    "is_stratified",
    "stratify",
]
