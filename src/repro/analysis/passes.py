"""The analysis passes of the theory linter.

:func:`analyze` runs a fixed pipeline of passes over a rule set:

* **schema** — signature consistency (SCH001) and ``ACDom`` head
  occurrences (SCH002), over *raw* rules so that even rule sets a
  :class:`~repro.core.theory.Theory` would reject are diagnosable;
* **guardedness** — Figure 1 class failures (GRD001 error when a rule is
  not weakly frontier-guarded, i.e. the theory falls outside every class;
  GRD002/GRD003 notes), with guard-gap and affected-position-derivation
  witnesses;
* **termination** — the acyclicity ladder (TRM001 weak, TRM002 joint,
  TRM003 super-weak, TRM004 model-faithful via a bounded
  critical-instance chase) with cycle/trace witnesses; each rung is
  reported informationally when a later rung still proves termination;
* **estimation** — predicted chase cost on weakly acyclic theories:
  per-relation polynomial fact-count degrees (EST001) and
  null-generation depth/degree bounds (EST002) from the position
  dependency graph;
* **stratification** — negation cycles (STR001, Definition 22);
* **reachability** — rules that can never fire (RCH001) and derived
  relations nothing reads (RCH002).

Every pass is traced as an ``analysis.<name>`` span when
:mod:`repro.obs` instrumentation is active, and diagnostic counts land in
``analysis.diagnostics`` / ``analysis.diagnostics.<severity>`` counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence, Union

from ..chase.termination import (
    MFA_CYCLIC,
    MFA_TERMINATES,
    estimate_chase_cost,
    find_joint_cycle,
    find_special_cycle,
    find_super_weak_cycle,
    mfa_check,
    position_dependency_graph,
)
from ..core.atoms import Atom, NegatedAtom
from ..core.parser import ParseError, parse_rules
from ..core.rules import Rule
from ..core.spans import SourceSpan
from ..core.theory import ACDOM, Theory
from ..datalog.stratification import find_negation_cycle
from ..guardedness.affected import (
    AffectedStep,
    affected_derivation,
    unsafe_variables,
    variable_body_positions,
)
from ..guardedness.classify import guard_gap, positive_reduct
from ..obs import current, span
from .diagnostics import CODES, AnalysisReport, Diagnostic, Severity

__all__ = ["AnalysisContext", "analyze", "analyze_text", "PASSES"]


@dataclass
class AnalysisContext:
    """Shared state handed to every pass."""

    rules: tuple[Rule, ...]
    theory: Optional[Theory]
    source: Optional[str]

    def span_of(self, rule_index: int) -> Optional[SourceSpan]:
        return self.rules[rule_index].span


def _diag(
    code: str,
    message: str,
    *,
    rule_index: Optional[int] = None,
    span: Optional[SourceSpan] = None,
    witness: Optional[dict] = None,
    severity: Optional[Severity] = None,
) -> Diagnostic:
    return Diagnostic(
        code=code,
        severity=severity if severity is not None else CODES[code].severity,
        message=message,
        rule_index=rule_index,
        span=span,
        witness=witness or {},
    )


# ----------------------------------------------------------------------
# schema pass — SCH001 / SCH002
# ----------------------------------------------------------------------
def schema_pass(ctx: AnalysisContext) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    first_use: dict[str, tuple[tuple[str, int, int], int, Atom]] = {}
    for index, rule in enumerate(ctx.rules):
        atoms: list[Atom] = []
        for literal in rule.body:
            atoms.append(literal.atom if isinstance(literal, NegatedAtom) else literal)
        atoms.extend(rule.head)
        for atom in atoms:
            key = atom.relation_key
            previous = first_use.get(atom.relation)
            if previous is None:
                first_use[atom.relation] = (key, index, atom)
            elif previous[0] != key:
                prev_key, prev_index, prev_atom = previous
                diagnostics.append(
                    _diag(
                        "SCH001",
                        f"relation {atom.relation} used with arity "
                        f"{key[1]} (annotation arity {key[2]}) but rule "
                        f"{prev_index} uses arity {prev_key[1]} "
                        f"(annotation arity {prev_key[2]})",
                        rule_index=index,
                        span=atom.span or rule.span,
                        witness={
                            "relation": atom.relation,
                            "first": {
                                "rule": prev_index,
                                "atom": str(prev_atom),
                                "arity": prev_key[1],
                                "annotation_arity": prev_key[2],
                            },
                            "conflict": {
                                "rule": index,
                                "atom": str(atom),
                                "arity": key[1],
                                "annotation_arity": key[2],
                            },
                        },
                    )
                )
        for atom in rule.head:
            if atom.relation == ACDOM:
                diagnostics.append(
                    _diag(
                        "SCH002",
                        f"{ACDOM} has a fixed extension and must not occur in "
                        "rule heads",
                        rule_index=index,
                        span=atom.span or rule.span,
                        witness={"rule": index, "atom": str(atom)},
                    )
                )
    return diagnostics


# ----------------------------------------------------------------------
# guardedness pass — GRD001 / GRD002 / GRD003
# ----------------------------------------------------------------------
def _derivation_prefix(
    steps: Sequence[AffectedStep], positions: Iterable[tuple[str, int]]
) -> list[AffectedStep]:
    """The shortest derivation prefix establishing all of ``positions``."""
    needed = set(positions)
    last = -1
    for index, step in enumerate(steps):
        if step.position in needed:
            last = index if index > last else last
    return list(steps[: last + 1])


def guardedness_pass(ctx: AnalysisContext) -> list[Diagnostic]:
    theory = ctx.theory
    if theory is None or theory.is_datalog():
        # Plain Datalog is in every expressiveness class of Figure 1.
        return []
    reduct = positive_reduct(theory)
    steps = affected_derivation(reduct)
    ap = {step.position for step in steps}
    diagnostics: list[Diagnostic] = []
    for index, rule in enumerate(theory):
        unsafe = unsafe_variables(rule, reduct, ap)
        frontier_required = rule.argument_frontier() & unsafe
        wfg_gap = guard_gap(rule, frontier_required)
        if wfg_gap is not None:
            unsafe_witness = []
            for variable in sorted(frontier_required, key=lambda v: v.name):
                body_positions = sorted(variable_body_positions(rule, variable))
                unsafe_witness.append(
                    {
                        "variable": variable.name,
                        "body_positions": [list(p) for p in body_positions],
                        "derivation": [
                            step.to_dict()
                            for step in _derivation_prefix(steps, body_positions)
                        ],
                    }
                )
            names = ", ".join(wfg_gap.required)
            diagnostics.append(
                _diag(
                    "GRD001",
                    "rule is not weakly frontier-guarded: unsafe frontier "
                    f"variable(s) {names} are not covered by any single body "
                    "atom, so the theory falls outside every Figure 1 class",
                    rule_index=index,
                    span=rule.span,
                    witness={"gap": wfg_gap.to_dict(), "unsafe": unsafe_witness},
                )
            )
            continue  # the stronger finding subsumes the notes below
        plain_gap = guard_gap(rule, _argument_uvars(rule))
        if plain_gap is not None:
            names = ", ".join(plain_gap.required)
            diagnostics.append(
                _diag(
                    "GRD002",
                    f"rule is not guarded: universal variable(s) {names} are "
                    "not covered by any single body atom",
                    rule_index=index,
                    span=rule.span,
                    witness={"gap": plain_gap.to_dict()},
                )
            )
        wg_gap = guard_gap(rule, _argument_uvars(rule) & unsafe)
        if wg_gap is not None:
            names = ", ".join(wg_gap.required)
            diagnostics.append(
                _diag(
                    "GRD003",
                    f"rule is not weakly guarded: unsafe variable(s) {names} "
                    "are not covered by any single body atom (the theory can "
                    "only be weakly frontier-guarded)",
                    rule_index=index,
                    span=rule.span,
                    witness={"gap": wg_gap.to_dict()},
                )
            )
    return diagnostics


def _argument_uvars(rule: Rule) -> set:
    found = set()
    for atom in rule.positive_body():
        found |= atom.argument_variables()
    return found


# ----------------------------------------------------------------------
# termination pass — TRM001 / TRM002 / TRM003 / TRM004
# ----------------------------------------------------------------------

#: Critical-instance chase budget used by the linter's MFA rung.  Small
#: on purpose: lint must stay fast, and an inconclusive ("exhausted")
#: check simply leaves TRM003 at warning severity.
LINT_MFA_MAX_STEPS = 512


def termination_pass(ctx: AnalysisContext) -> list[Diagnostic]:
    theory = ctx.theory
    if theory is None or theory.is_datalog():
        return []
    graph = position_dependency_graph(theory)
    cycle = find_special_cycle(graph)
    if cycle is None:
        return []
    # Climb the ladder only as far as needed: each rung is checked only
    # when every weaker criterion has already failed.
    joint_cycle = find_joint_cycle(theory)
    swa_cycle = find_super_weak_cycle(theory) if joint_cycle is not None else None
    mfa = (
        mfa_check(theory, max_steps=LINT_MFA_MAX_STEPS)
        if swa_cycle is not None
        else None
    )
    mfa_terminates = mfa is not None and mfa.verdict == MFA_TERMINATES
    terminates_later = (
        joint_cycle is None or swa_cycle is None or mfa_terminates
    )
    cycle_witness = [
        {
            "source": list(source),
            "target": list(target),
            "special": special,
            "rule": graph.provenance.get((source, target)),
        }
        for source, target, special in cycle
    ]
    anchor = next(
        (edge["rule"] for edge in cycle_witness if edge["rule"] is not None), None
    )
    if joint_cycle is None:
        trm001_suffix = "; joint acyclicity still guarantees chase termination"
    elif swa_cycle is None:
        trm001_suffix = (
            "; super-weak acyclicity still guarantees chase termination"
        )
    elif mfa_terminates:
        trm001_suffix = (
            "; model-faithful acyclicity still guarantees chase termination"
        )
    else:
        trm001_suffix = ", so the chase is not guaranteed to terminate"
    diagnostics = [
        _diag(
            "TRM001",
            "theory is not weakly acyclic: the position dependency graph has "
            "a cycle through a special edge" + trm001_suffix,
            rule_index=anchor,
            span=ctx.span_of(anchor) if anchor is not None else None,
            witness={"cycle": cycle_witness},
            severity=Severity.INFO if terminates_later else None,
        )
    ]
    if joint_cycle is not None:
        if swa_cycle is None:
            trm002_suffix = (
                "; super-weak acyclicity still guarantees chase termination"
            )
        elif mfa_terminates:
            trm002_suffix = (
                "; model-faithful acyclicity still guarantees chase "
                "termination"
            )
        else:
            trm002_suffix = (
                ", so no acyclicity criterion proves chase termination"
            )
        anchor = joint_cycle[0][0]
        diagnostics.append(
            _diag(
                "TRM002",
                "theory is not jointly acyclic: existential variables feed "
                "each other in a cycle" + trm002_suffix,
                rule_index=anchor,
                span=ctx.span_of(anchor),
                witness={
                    "cycle": [
                        {"rule": rule_index, "variable": variable.name}
                        for rule_index, variable in joint_cycle
                    ]
                },
                severity=(
                    Severity.INFO
                    if swa_cycle is None or mfa_terminates
                    else None
                ),
            )
        )
    if swa_cycle is not None:
        if mfa_terminates:
            trm003_suffix = (
                "; model-faithful acyclicity still guarantees chase "
                "termination"
            )
        elif mfa is not None and mfa.verdict == MFA_CYCLIC:
            trm003_suffix = (
                ", and the critical-instance chase is cyclic (see TRM004)"
            )
        else:
            trm003_suffix = (
                ", and the bounded critical-instance chase is inconclusive"
            )
        anchor = swa_cycle[0][0]
        diagnostics.append(
            _diag(
                "TRM003",
                "theory is not super-weakly acyclic: skolem terms can move "
                "between existential positions in a cycle" + trm003_suffix,
                rule_index=anchor,
                span=ctx.span_of(anchor),
                witness={
                    "cycle": [
                        {"rule": rule_index, "variable": variable.name}
                        for rule_index, variable in swa_cycle
                    ]
                },
                severity=Severity.INFO if mfa_terminates else None,
            )
        )
    if mfa is not None and mfa.verdict == MFA_CYCLIC and mfa.cyclic is not None:
        anchor = mfa.cyclic["rule"]
        diagnostics.append(
            _diag(
                "TRM004",
                "theory is not model-faithfully acyclic: the critical-"
                "instance chase re-creates the skolem term of "
                f"{mfa.cyclic['evar']}@rule{anchor} inside itself, so no "
                "acyclicity criterion proves chase termination",
                rule_index=anchor,
                span=ctx.span_of(anchor),
                witness={
                    "max_steps": mfa.max_steps,
                    "trace": [dict(step) for step in mfa.trace],
                    "cyclic": dict(mfa.cyclic),
                },
            )
        )
    return diagnostics


# ----------------------------------------------------------------------
# estimation pass — EST001 / EST002
# ----------------------------------------------------------------------
def estimation_pass(ctx: AnalysisContext) -> list[Diagnostic]:
    theory = ctx.theory
    if theory is None or theory.is_datalog():
        return []
    estimate = estimate_chase_cost(theory)
    if estimate is None:
        # Cost bounds are only derivable under weak acyclicity; the
        # termination pass already reports why the ladder was needed.
        return []
    cost = estimate.to_dict()
    return [
        _diag(
            "EST001",
            f"chase materializes at most O(n^{estimate.total_degree}) facts "
            "per relation on an n-constant database (weakly acyclic bound)",
            witness={
                "relations": cost["relations"],
                "total_degree": cost["total_degree"],
            },
        ),
        _diag(
            "EST002",
            f"chase generates nulls of nesting depth at most "
            f"{estimate.max_rank} across {len(cost['existentials'])} "
            "existential variable(s)",
            witness={
                "existentials": cost["existentials"],
                "max_rank": cost["max_rank"],
            },
        ),
    ]


# ----------------------------------------------------------------------
# stratification pass — STR001
# ----------------------------------------------------------------------
def stratification_pass(ctx: AnalysisContext) -> list[Diagnostic]:
    theory = ctx.theory
    if theory is None or not theory.has_negation():
        return []
    cycle = find_negation_cycle(theory)
    if cycle is None:
        return []
    anchor = cycle[0][3]
    relations = " -> ".join([edge[0] for edge in cycle] + [cycle[0][0]])
    return [
        _diag(
            "STR001",
            f"theory is not stratifiable: cycle through negation "
            f"({relations}); stratified semantics (Definition 22) is "
            "undefined",
            rule_index=anchor,
            span=ctx.span_of(anchor),
            witness={
                "cycle": [
                    {
                        "body": body,
                        "head": head,
                        "negative": negative,
                        "rule": rule_index,
                    }
                    for body, head, negative, rule_index in cycle
                ]
            },
        )
    ]


# ----------------------------------------------------------------------
# reachability pass — RCH001 / RCH002
# ----------------------------------------------------------------------
def _live_relations(rules: Sequence[Rule]) -> set[str]:
    """Relations derivable from *some* database: EDB relations, ``ACDom``,
    and heads of rules whose positive bodies mention only live relations."""
    defined: set[str] = set()
    for rule in rules:
        for atom in rule.head:
            defined.add(atom.relation)
    live = {ACDOM}
    for rule in rules:
        for key in rule.relation_keys():
            if key[0] not in defined:
                live.add(key[0])
    changed = True
    while changed:
        changed = False
        for rule in rules:
            if all(atom.relation in live for atom in rule.positive_body()):
                for atom in rule.head:
                    if atom.relation not in live:
                        live.add(atom.relation)
                        changed = True
    return live


def reachability_pass(ctx: AnalysisContext) -> list[Diagnostic]:
    rules = ctx.rules
    diagnostics: list[Diagnostic] = []
    live = _live_relations(rules)
    all_relations: set[str] = set()
    for rule in rules:
        all_relations |= {key[0] for key in rule.relation_keys()}
    underivable = sorted(all_relations - live)
    # For pure Datalog the EDB/IDB split is exact: databases range over
    # relations no rule defines, so a deadlocked rule can *never* fire.
    # In the existential (chase) setting the database ranges over the
    # full signature — e.g. Example 1 seeds Scientific directly — so the
    # same deadlock is only a self-support smell, reported as info.
    datalog = all(rule.is_datalog() for rule in rules)
    for index, rule in enumerate(rules):
        blocked = sorted(
            {
                atom.relation
                for atom in rule.positive_body()
                if atom.relation not in live
            }
        )
        if blocked:
            names = ", ".join(underivable)
            if datalog:
                message = (
                    f"rule can never fire: body relation {blocked[0]} is not "
                    "derivable from the EDB (input) signature"
                )
                severity = None
            else:
                message = (
                    f"rule cannot fire unless the database seeds one of the "
                    f"self-supporting relations {{{names}}} directly"
                )
                severity = Severity.INFO
            diagnostics.append(
                _diag(
                    "RCH001",
                    message,
                    rule_index=index,
                    span=rule.span,
                    witness={"relation": blocked[0], "underivable": underivable},
                    severity=severity,
                )
            )
    read: set[str] = set()
    for rule in rules:
        for literal in rule.body:
            read.add(literal.relation)
    defined_by: dict[str, list[int]] = {}
    head_spans: dict[str, Optional[SourceSpan]] = {}
    for index, rule in enumerate(rules):
        for atom in rule.head:
            defined_by.setdefault(atom.relation, []).append(index)
            head_spans.setdefault(atom.relation, atom.span or rule.span)
    for relation in sorted(defined_by):
        if relation in read:
            continue
        indices = sorted(set(defined_by[relation]))
        diagnostics.append(
            _diag(
                "RCH002",
                f"relation {relation} is derived but never read (dead end, "
                "or the intended output relation)",
                rule_index=indices[0],
                span=head_spans[relation],
                witness={"relation": relation, "defined_by": indices},
            )
        )
    return diagnostics


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------
PASSES: tuple[tuple[str, Callable[[AnalysisContext], list[Diagnostic]]], ...] = (
    ("schema", schema_pass),
    ("guardedness", guardedness_pass),
    ("termination", termination_pass),
    ("estimation", estimation_pass),
    ("stratification", stratification_pass),
    ("reachability", reachability_pass),
)


def analyze(
    subject: Union[Theory, Sequence[Rule]],
    *,
    source: Optional[str] = None,
) -> AnalysisReport:
    """Run every analysis pass over a theory or raw rule list.

    Accepts raw rules (from :func:`~repro.core.parser.parse_rules`) so
    that signature-inconsistent rule sets — which :class:`Theory`
    rejects — still produce SCH001 diagnostics; theory-level passes are
    skipped in that case."""
    if isinstance(subject, Theory):
        rules = subject.rules
    else:
        rules = tuple(subject)
    if source is None:
        for rule in rules:
            if rule.span is not None and rule.span.source is not None:
                source = rule.span.source
                break
    ctx = AnalysisContext(rules=rules, theory=None, source=source)
    diagnostics: list[Diagnostic] = []
    with span("analysis.schema", rules=len(rules)):
        diagnostics.extend(schema_pass(ctx))
    if not any(d.code.startswith("SCH") for d in diagnostics):
        if isinstance(subject, Theory):
            ctx.theory = subject
        else:
            try:
                ctx.theory = Theory(rules)
            except ValueError:
                ctx.theory = None
    for name, run in PASSES[1:]:
        with span(f"analysis.{name}", rules=len(rules)):
            diagnostics.extend(run(ctx))
    diagnostics.sort(
        key=lambda d: (
            d.span.line if d.span else 1_000_000,
            d.span.column if d.span else 0,
            d.code,
        )
    )
    instr = current()
    if instr is not None:
        instr.inc("analysis.diagnostics", len(diagnostics))
        for diagnostic in diagnostics:
            instr.inc(f"analysis.diagnostics.{diagnostic.severity.label}")
    return AnalysisReport(tuple(diagnostics), source=source)


def analyze_text(text: str, *, source: Optional[str] = None) -> AnalysisReport:
    """Parse and analyze; syntax errors become PAR001 diagnostics."""
    try:
        rules = parse_rules(text, source=source)
    except ParseError as error:
        error_span = SourceSpan(
            error.line, error.column, error.line, error.column, source
        )
        return AnalysisReport(
            (
                _diag(
                    "PAR001",
                    error.raw_message,
                    span=error_span,
                    witness={"position": error.position},
                ),
            ),
            source=source,
        )
    return analyze(rules, source=source)
