"""Diagnostic records for the theory linter.

A :class:`Diagnostic` is one finding of the static analyzer: a stable
code (``GRD001``, ``TRM001``, …), a severity, a human-readable message, a
source location, and a **witness** — a machine-checkable JSON-able
structure that *proves* the finding (an uncovered unsafe variable with
its affected-position derivation, a special-edge cycle, a negation
cycle, …).  :mod:`repro.analysis.replay` re-checks witnesses against the
rules they were derived from; the test suite replays every witness the
analyzer ever emits.

The code registry below maps every code to its default severity and its
provenance in the paper (Definition/Theorem/Section), rendered in
DESIGN.md.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Optional

from ..core.spans import SourceSpan

__all__ = [
    "Severity",
    "Diagnostic",
    "CodeInfo",
    "CODES",
    "AnalysisReport",
    "REPORT_SCHEMA_VERSION",
    "REPORT_JSON_SCHEMA",
]

#: Version of the ``repro lint --format json`` report layout.  Bumped
#: whenever ``AnalysisReport.to_dict()`` changes shape; consumers pin it
#: via ``REPORT_JSON_SCHEMA`` (``repro lint --print-schema``).
REPORT_SCHEMA_VERSION = 2


class Severity(enum.IntEnum):
    """Diagnostic severity, ordered so thresholds compare naturally."""

    INFO = 1
    WARNING = 2
    ERROR = 3

    @property
    def label(self) -> str:
        return self.name.lower()

    @classmethod
    def from_label(cls, label: str) -> "Severity":
        return cls[label.upper()]


@dataclass(frozen=True)
class CodeInfo:
    """Registry entry for one diagnostic code."""

    code: str
    title: str
    severity: Severity
    provenance: str


#: Every diagnostic code the analyzer can emit.  ``severity`` is the
#: default; individual diagnostics may be downgraded (e.g. TRM001 is
#: informational when joint acyclicity still guarantees termination).
CODES: dict[str, CodeInfo] = {
    info.code: info
    for info in (
        CodeInfo(
            "PAR001",
            "syntax error",
            Severity.ERROR,
            "Section 2 (rule syntax, Equation (1))",
        ),
        CodeInfo(
            "SCH001",
            "inconsistent relation signature",
            Severity.ERROR,
            "Section 2 (relational signatures)",
        ),
        CodeInfo(
            "SCH002",
            "ACDom must not occur in rule heads",
            Severity.ERROR,
            "Section 2, 'Further Notions' (active constant domain)",
        ),
        CodeInfo(
            "GRD001",
            "rule is not weakly frontier-guarded",
            Severity.ERROR,
            "Definitions 1-3, Figure 1 (the theory falls outside every class)",
        ),
        CodeInfo(
            "GRD002",
            "rule is not guarded",
            Severity.INFO,
            "Definition 1 (guarded rules)",
        ),
        CodeInfo(
            "GRD003",
            "rule is not weakly guarded",
            Severity.INFO,
            "Definitions 2-3 (affected positions, weak guards)",
        ),
        CodeInfo(
            "TRM001",
            "theory is not weakly acyclic",
            Severity.WARNING,
            "Section 9 [23]; Fagin et al. (position dependency graph)",
        ),
        CodeInfo(
            "TRM002",
            "theory is not jointly acyclic",
            Severity.WARNING,
            "Section 9 [23]; Kroetzsch & Rudolph, IJCAI'11",
        ),
        CodeInfo(
            "TRM003",
            "theory is not super-weakly acyclic",
            Severity.WARNING,
            "Section 9 [23]; Marnette, PODS'09 (super-weak acyclicity)",
        ),
        CodeInfo(
            "TRM004",
            "critical-instance chase is cyclic (not MFA)",
            Severity.WARNING,
            "arXiv 1411.5220 §4; Cuenca Grau et al., JAIR'13 (MFA)",
        ),
        CodeInfo(
            "EST001",
            "predicted chase fact-count bound",
            Severity.INFO,
            "Fagin et al. (weak acyclicity gives polynomial chase bounds)",
        ),
        CodeInfo(
            "EST002",
            "predicted null-generation bound",
            Severity.INFO,
            "arXiv 1411.5220 §3 (existential fan-out along the position graph)",
        ),
        CodeInfo(
            "STR001",
            "theory is not stratifiable",
            Severity.ERROR,
            "Definition 22 / Section 8 (stratified negation)",
        ),
        CodeInfo(
            "RCH001",
            "rule can never fire",
            Severity.WARNING,
            "Section 2 (EDB/IDB signature split); predicate reachability",
        ),
        CodeInfo(
            "RCH002",
            "relation is derived but never read",
            Severity.INFO,
            "Section 2 (queries designate an output relation)",
        ),
    )
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding: code, severity, message, location, and witness."""

    code: str
    severity: Severity
    message: str
    rule_index: Optional[int] = None
    span: Optional[SourceSpan] = None
    witness: Mapping[str, Any] = field(default_factory=dict)

    def location(self) -> str:
        if self.span is not None:
            return self.span.label()
        return "<theory>"

    def to_dict(self) -> dict[str, Any]:
        return {
            "code": self.code,
            "severity": self.severity.label,
            "message": self.message,
            "rule": self.rule_index,
            "span": self.span.to_dict() if self.span else None,
            "witness": json.loads(json.dumps(dict(self.witness))),
        }


@dataclass(frozen=True)
class AnalysisReport:
    """The outcome of one analyzer run over a rule set."""

    diagnostics: tuple[Diagnostic, ...]
    source: Optional[str] = None

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def by_code(self, code: str) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.code == code)

    def errors(self) -> tuple[Diagnostic, ...]:
        return self.at_least(Severity.ERROR)

    def at_least(self, severity: Severity) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity >= severity)

    def max_severity(self) -> Optional[Severity]:
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)

    def counts(self) -> dict[str, int]:
        counts = {severity.label: 0 for severity in Severity}
        for diagnostic in self.diagnostics:
            counts[diagnostic.severity.label] += 1
        return counts

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema_version": REPORT_SCHEMA_VERSION,
            "source": self.source,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "summary": self.counts(),
        }

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def render_text(self) -> str:
        lines: list[str] = []
        for diagnostic in self.diagnostics:
            lines.append(
                f"{diagnostic.location()}: {diagnostic.severity.label} "
                f"{diagnostic.code}: {diagnostic.message}"
            )
            lines.extend(f"    {line}" for line in _witness_lines(diagnostic))
        counts = self.counts()
        lines.append(
            f"summary: {counts['error']} errors, {counts['warning']} warnings, "
            f"{counts['info']} infos ({len(self.diagnostics)} diagnostics)"
        )
        return "\n".join(lines)

    def render_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def _format_position(position: Any) -> str:
    relation, index = position
    return f"({relation},{index})"


def _witness_lines(diagnostic: Diagnostic) -> list[str]:
    """Compact human rendering of a witness, per code family."""
    witness = diagnostic.witness
    lines: list[str] = []
    if diagnostic.code in ("GRD001", "GRD002", "GRD003"):
        gap = witness.get("gap", {})
        required = ", ".join(gap.get("required", ()))
        lines.append(f"no single body atom covers {{{required}}}:")
        for entry in gap.get("atoms", ()):
            missing = ", ".join(entry["missing"])
            lines.append(f"  {entry['atom']} is missing {{{missing}}}")
        for entry in witness.get("unsafe", ()):
            positions = ", ".join(
                _format_position(p) for p in entry["body_positions"]
            )
            lines.append(
                f"note: {entry['variable']} is unsafe - body positions "
                f"{positions} are all affected "
                f"({len(entry['derivation'])}-step derivation)"
            )
    elif diagnostic.code == "TRM001":
        lines.append("cycle through a special edge in the position graph:")
        for edge in witness.get("cycle", ()):
            arrow = "=>" if edge["special"] else "->"
            lines.append(
                f"  {_format_position(edge['source'])} {arrow} "
                f"{_format_position(edge['target'])}"
            )
    elif diagnostic.code == "TRM002":
        nodes = witness.get("cycle", ())
        rendered = " -> ".join(
            f"{n['variable']}@rule{n['rule']}" for n in nodes
        )
        if nodes:
            lines.append(f"existential dependency cycle: {rendered} -> (wraps)")
    elif diagnostic.code == "TRM003":
        nodes = witness.get("cycle", ())
        rendered = " -> ".join(
            f"{n['variable']}@rule{n['rule']}" for n in nodes
        )
        if nodes:
            lines.append(
                f"super-weak dependency cycle: {rendered} -> (wraps)"
            )
    elif diagnostic.code == "TRM004":
        cyclic = witness.get("cyclic", {})
        lines.append(
            f"critical-instance chase re-nests the skolem term of "
            f"{cyclic.get('evar')}@rule{cyclic.get('rule')} after "
            f"{len(witness.get('trace', ()))} steps "
            f"(budget {witness.get('max_steps')})"
        )
    elif diagnostic.code == "EST001":
        for entry in witness.get("relations", ()):
            lines.append(
                f"  {entry['relation']}: degree {entry['degree']}"
            )
        lines.append(
            f"max per-relation polynomial degree: "
            f"{witness.get('total_degree')}"
        )
    elif diagnostic.code == "EST002":
        for entry in witness.get("existentials", ()):
            lines.append(
                f"  {entry['variable']}@rule{entry['rule']}: "
                f"degree {entry['degree']}, depth {entry['depth']}"
            )
        lines.append(f"max null nesting depth: {witness.get('max_rank')}")
    elif diagnostic.code == "STR001":
        lines.append("cycle through negation in the predicate graph:")
        for edge in witness.get("cycle", ()):
            arrow = "-[not]->" if edge["negative"] else "->"
            lines.append(
                f"  {edge['body']} {arrow} {edge['head']} (rule {edge['rule']})"
            )
    elif diagnostic.code == "RCH001":
        blocked = ", ".join(witness.get("underivable", ()))
        lines.append(
            f"relation {witness.get('relation')} is underivable; "
            f"deadlocked set: {{{blocked}}}"
        )
    elif diagnostic.code == "PAR001":
        position = witness.get("position")
        if position is not None:
            lines.append(f"at character offset {position}")
    elif diagnostic.code == "RCH002":
        rules = ", ".join(str(i) for i in witness.get("defined_by", ()))
        lines.append(
            f"relation {witness.get('relation')} is only written "
            f"(by rule {rules})"
        )
    elif witness:
        lines.append(json.dumps(dict(witness), sort_keys=True))
    return lines


#: JSON Schema (draft 2020-12) for ``AnalysisReport.to_dict()`` — used by
#: the CI gate that validates ``repro lint --format json`` output.
REPORT_JSON_SCHEMA: dict[str, Any] = {
    "$schema": "https://json-schema.org/draft/2020-12/schema",
    "type": "object",
    "required": ["schema_version", "source", "diagnostics", "summary"],
    "additionalProperties": False,
    "properties": {
        "schema_version": {"const": REPORT_SCHEMA_VERSION},
        "source": {"type": ["string", "null"]},
        "diagnostics": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["code", "severity", "message", "rule", "span", "witness"],
                "additionalProperties": False,
                "properties": {
                    "code": {"type": "string", "pattern": "^[A-Z]{3}[0-9]{3}$"},
                    "severity": {"enum": ["error", "warning", "info"]},
                    "message": {"type": "string"},
                    "rule": {"type": ["integer", "null"]},
                    "span": {
                        "type": ["object", "null"],
                        "required": [
                            "line",
                            "column",
                            "end_line",
                            "end_column",
                            "source",
                        ],
                        "additionalProperties": False,
                        "properties": {
                            "line": {"type": "integer", "minimum": 1},
                            "column": {"type": "integer", "minimum": 1},
                            "end_line": {"type": "integer", "minimum": 1},
                            "end_column": {"type": "integer", "minimum": 1},
                            "source": {"type": ["string", "null"]},
                        },
                    },
                    "witness": {"type": "object"},
                },
            },
        },
        "summary": {
            "type": "object",
            "required": ["error", "warning", "info"],
            "additionalProperties": False,
            "properties": {
                "error": {"type": "integer", "minimum": 0},
                "warning": {"type": "integer", "minimum": 0},
                "info": {"type": "integer", "minimum": 0},
            },
        },
    },
}
