"""Strategy advisor — predictive engine selection for the service.

The registry's ``auto`` strategy used to *react* to translation blowups
(translate first, fall back when ``max_rules`` explodes).  The advisor
turns that decision predictive: it climbs the acyclicity ladder
(weak ⊂ joint ⊂ super-weak ⊂ MFA, see ``chase/termination.py``), prices
the chase on weakly acyclic theories via the position-graph cost
estimator, and emits a :class:`StrategyAdvice` that
``service.registry._pick_strategy`` consumes *before* any translation is
attempted.  The verdict is sound in the never-overclaims direction: a
``terminates=True`` advice certifies restricted/skolem chase
termination on **every** database, so routing such theories straight to
the chase can never trade completeness away.

Every run is traced as an ``analysis.advisor`` span (with ``ladder``,
``estimate``, and ``mfa`` sub-spans) and counted under
``advisor.runs`` / ``advisor.criterion.<criterion>`` /
``advisor.recommendation.<strategy>``, which the service surfaces on
``/metrics``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..chase.termination import (
    CRITERION_DATALOG,
    CRITERION_JOINTLY_ACYCLIC,
    CRITERION_MFA,
    CRITERION_SUPER_WEAKLY_ACYCLIC,
    CRITERION_UNKNOWN,
    CRITERION_WEAKLY_ACYCLIC,
    MFA_TERMINATES,
    TERMINATION_CRITERIA,
    estimate_chase_cost,
    find_joint_cycle,
    find_super_weak_cycle,
    is_weakly_acyclic,
    mfa_check,
)
from ..core.theory import Theory
from ..guardedness.classify import Classification, classify
from ..obs import current, span

__all__ = [
    "ADVICE_SCHEMA_VERSION",
    "ADVICE_JSON_SCHEMA",
    "StrategyAdvice",
    "advise",
]

#: Version of the ``repro advise`` JSON report layout.
ADVICE_SCHEMA_VERSION = 1

#: Default critical-instance chase budget for the MFA rung.  Larger than
#: the linter's (the advisor runs once per registered theory, not on
#: every editor keystroke) but still bounded: exhaustion degrades the
#: verdict to "unknown", never to an overclaim.
ADVISE_MFA_MAX_STEPS = 2048

#: Engine applicability verdicts (``StrategyAdvice.engines`` values).
ENGINE_COMPLETE = "complete"
ENGINE_NOT_APPLICABLE = "not-applicable"
ENGINE_TERMINATES = "terminates"
ENGINE_BUDGETED = "budgeted"


@dataclass(frozen=True)
class StrategyAdvice:
    """The advisor's verdict for one theory.

    ``criterion`` is the termination-criterion constant that proved the
    chase finite (or :data:`CRITERION_UNKNOWN`); ``engines`` maps each
    answering strategy to its applicability verdict; ``cost`` is the
    weak-acyclicity cost estimate (``None`` beyond the first rung);
    ``mfa`` summarizes the bounded critical-instance chase when it ran;
    ``witness`` carries the blocking evidence when no criterion holds.
    """

    criterion: str
    terminates: bool
    recommended: str
    classes: tuple[str, ...]
    engines: dict[str, str]
    cost: Optional[dict[str, Any]] = None
    mfa: Optional[dict[str, Any]] = None
    witness: Optional[dict[str, Any]] = None
    reasons: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {
            "criterion": self.criterion,
            "terminates": self.terminates,
            "recommended": self.recommended,
            "classes": list(self.classes),
            "engines": dict(self.engines),
            "cost": self.cost,
            "mfa": self.mfa,
            "witness": self.witness,
            "reasons": list(self.reasons),
        }


def advise(
    theory: Theory,
    *,
    labels: Optional[Classification] = None,
    mfa_max_steps: int = ADVISE_MFA_MAX_STEPS,
) -> StrategyAdvice:
    """Predict the right answering strategy for ``theory``.

    Climbs the acyclicity ladder lazily (each rung only when every
    weaker one failed), so the common weakly acyclic case never pays for
    the critical-instance chase.  The returned recommendation mirrors
    the registry's ``auto`` dispatch; ``labels`` can be passed in when
    classification already ran (the registry does)."""
    with span("analysis.advisor", rules=len(theory)):
        if labels is None:
            with span("analysis.advisor.classify"):
                labels = classify(theory)
        mfa_summary: Optional[dict[str, Any]] = None
        witness: Optional[dict[str, Any]] = None
        with span("analysis.advisor.ladder") as ladder_span:
            if theory.is_datalog():
                criterion = CRITERION_DATALOG
            elif is_weakly_acyclic(theory):
                criterion = CRITERION_WEAKLY_ACYCLIC
            elif find_joint_cycle(theory) is None:
                criterion = CRITERION_JOINTLY_ACYCLIC
            else:
                swa_cycle = find_super_weak_cycle(theory)
                if swa_cycle is None:
                    criterion = CRITERION_SUPER_WEAKLY_ACYCLIC
                else:
                    with span("analysis.advisor.mfa", budget=mfa_max_steps):
                        result = mfa_check(theory, max_steps=mfa_max_steps)
                    mfa_summary = result.to_dict()
                    if result.verdict == MFA_TERMINATES:
                        criterion = CRITERION_MFA
                    else:
                        criterion = CRITERION_UNKNOWN
                        witness = {
                            "super_weak_cycle": [
                                {"rule": rule_index, "variable": variable.name}
                                for rule_index, variable in swa_cycle
                            ],
                            "mfa": mfa_summary,
                        }
            if ladder_span is not None:
                ladder_span.set(criterion=criterion)
        terminates = criterion != CRITERION_UNKNOWN
        with span("analysis.advisor.estimate"):
            estimate = estimate_chase_cost(theory)
        cost = estimate.to_dict() if estimate is not None else None

        datalog_ok = labels.datalog and not theory.has_negation()
        translate_ok = labels.nearly_guarded or labels.nearly_frontier_guarded
        wfg_ok = labels.weakly_guarded or labels.weakly_frontier_guarded
        engines = {
            "datalog": ENGINE_COMPLETE if datalog_ok else ENGINE_NOT_APPLICABLE,
            "translate": (
                ENGINE_COMPLETE if translate_ok else ENGINE_NOT_APPLICABLE
            ),
            "wfg-pipeline": (
                ENGINE_COMPLETE if wfg_ok else ENGINE_NOT_APPLICABLE
            ),
            "chase": ENGINE_TERMINATES if terminates else ENGINE_BUDGETED,
        }
        reasons: list[str] = []
        if terminates:
            reasons.append(f"chase termination proven: {criterion}")
        else:
            reasons.append(
                "no acyclicity criterion proves chase termination "
                f"(critical-instance budget {mfa_max_steps})"
            )
        if datalog_ok:
            recommended = "datalog"
            reasons.append(
                "plain Datalog without negation: semi-naive fixpoint is "
                "complete with no translation"
            )
        elif terminates:
            recommended = "chase"
            reasons.append(
                "terminating restricted chase is complete and avoids the "
                "worst-case-sized class translation"
            )
        elif translate_ok:
            recommended = "translate"
            reasons.append(
                "PTime class translation to Datalog is complete"
            )
        elif wfg_ok:
            recommended = "wfg-pipeline"
            reasons.append(
                "Section 7 weakly-frontier-guarded pipeline is complete"
            )
        else:
            recommended = "chase"
            reasons.append(
                "no complete engine applies; budgeted chase returns sound "
                "partial answers"
            )
        instr = current()
        if instr is not None:
            instr.inc("advisor.runs")
            instr.inc(f"advisor.criterion.{criterion}")
            instr.inc(f"advisor.recommendation.{recommended}")
        return StrategyAdvice(
            criterion=criterion,
            terminates=terminates,
            recommended=recommended,
            classes=tuple(labels.names()),
            engines=engines,
            cost=cost,
            mfa=mfa_summary,
            witness=witness,
            reasons=tuple(reasons),
        )


#: JSON Schema (draft 2020-12) for the ``repro advise`` report — used by
#: the CI gate that validates ``repro advise --format json`` output.
ADVICE_JSON_SCHEMA: dict[str, Any] = {
    "$schema": "https://json-schema.org/draft/2020-12/schema",
    "type": "object",
    "required": ["schema_version", "source", "rules", "advice"],
    "additionalProperties": False,
    "properties": {
        "schema_version": {"const": ADVICE_SCHEMA_VERSION},
        "source": {"type": ["string", "null"]},
        "rules": {"type": "integer", "minimum": 0},
        "advice": {
            "type": "object",
            "required": [
                "criterion",
                "terminates",
                "recommended",
                "classes",
                "engines",
                "cost",
                "mfa",
                "witness",
                "reasons",
            ],
            "additionalProperties": False,
            "properties": {
                "criterion": {
                    "enum": list(TERMINATION_CRITERIA) + [CRITERION_UNKNOWN]
                },
                "terminates": {"type": "boolean"},
                "recommended": {
                    "enum": ["datalog", "translate", "wfg-pipeline", "chase"]
                },
                "classes": {"type": "array", "items": {"type": "string"}},
                "engines": {
                    "type": "object",
                    "required": [
                        "datalog",
                        "translate",
                        "wfg-pipeline",
                        "chase",
                    ],
                    "additionalProperties": False,
                    "properties": {
                        name: {
                            "enum": [
                                ENGINE_COMPLETE,
                                ENGINE_NOT_APPLICABLE,
                                ENGINE_TERMINATES,
                                ENGINE_BUDGETED,
                            ]
                        }
                        for name in (
                            "datalog",
                            "translate",
                            "wfg-pipeline",
                            "chase",
                        )
                    },
                },
                "cost": {"type": ["object", "null"]},
                "mfa": {"type": ["object", "null"]},
                "witness": {"type": ["object", "null"]},
                "reasons": {"type": "array", "items": {"type": "string"}},
            },
        },
    },
}
