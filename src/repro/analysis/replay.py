"""Witness replay — mechanical verification of analyzer findings.

Every :class:`~repro.analysis.diagnostics.Diagnostic` carries a witness
that is supposed to *prove* the finding.  :func:`replay` re-checks a
witness against the rules it was derived from, using only elementary
operations (set membership, edge existence in freshly recomputed graphs,
derivation-step checking) — never by re-running the analysis pass that
produced it.  A diagnostic whose witness does not replay is a bug in the
analyzer; the test suite replays every witness it ever sees.
"""

from __future__ import annotations

from typing import NoReturn, Optional, Sequence

from ..chase.termination import (
    TermToken,
    critical_instance,
    estimate_chase_cost,
    joint_dependency_edges,
    position_dependency_graph,
    super_weak_dependency_edges,
    term_token_from_json,
)
from ..core.atoms import Atom
from ..core.parser import ParseError, parse_rules
from ..core.rules import Rule
from ..core.terms import Constant, Variable
from ..core.theory import ACDOM, Theory
from ..datalog.stratification import dependency_edges
from ..guardedness.affected import Position, variable_body_positions
from .diagnostics import Diagnostic

__all__ = ["ReplayError", "replay"]


class ReplayError(AssertionError):
    """A witness failed mechanical verification."""


def _fail(diagnostic: Diagnostic, reason: str) -> NoReturn:
    raise ReplayError(f"{diagnostic.code} witness does not replay: {reason}")


def _position(raw: object) -> Position:
    relation, index = raw  # type: ignore[misc]
    return (str(relation), int(index))


def _rule_at(
    diagnostic: Diagnostic, rules: Sequence[Rule], index: object
) -> Rule:
    if not isinstance(index, int) or not 0 <= index < len(rules):
        _fail(diagnostic, f"rule index {index!r} out of range")
    return rules[index]


def replay(
    diagnostic: Diagnostic,
    rules: Sequence[Rule],
    *,
    text: Optional[str] = None,
) -> None:
    """Verify ``diagnostic``'s witness against ``rules`` (raises
    :class:`ReplayError` on failure, returns ``None`` on success).

    ``text`` is only needed for PAR001 (the original source text, so the
    parse failure can be reproduced)."""
    handler = _HANDLERS.get(diagnostic.code)
    if handler is None:
        _fail(diagnostic, f"unknown diagnostic code {diagnostic.code}")
    if diagnostic.code == "PAR001":
        _replay_parse(diagnostic, text)
    else:
        handler(diagnostic, tuple(rules))


# ----------------------------------------------------------------------
# per-code verifiers
# ----------------------------------------------------------------------
def _replay_parse(diagnostic: Diagnostic, text: Optional[str]) -> None:
    if text is None:
        _fail(diagnostic, "original text required to replay a parse error")
    try:
        parse_rules(text)
    except ParseError as error:
        if diagnostic.span is None:
            _fail(diagnostic, "parse diagnostic has no span")
        if (error.line, error.column) != (
            diagnostic.span.line,
            diagnostic.span.column,
        ):
            _fail(
                diagnostic,
                f"parse error moved: reported {diagnostic.span.line}:"
                f"{diagnostic.span.column}, replay found "
                f"{error.line}:{error.column}",
            )
        return
    _fail(diagnostic, "text parses cleanly")


def _replay_schema_arity(diagnostic: Diagnostic, rules: Sequence[Rule]) -> None:
    witness = diagnostic.witness
    relation = witness["relation"]
    keys = set()
    for site in (witness["first"], witness["conflict"]):
        rule = _rule_at(diagnostic, rules, site["rule"])
        key = (relation, site["arity"], site["annotation_arity"])
        if key not in rule.relation_keys():
            _fail(
                diagnostic,
                f"rule {site['rule']} does not use {relation} with "
                f"arity {site['arity']}/{site['annotation_arity']}",
            )
        keys.add(key)
    if len(keys) != 2:
        _fail(diagnostic, "the two claimed signatures coincide")


def _replay_schema_acdom(diagnostic: Diagnostic, rules: Sequence[Rule]) -> None:
    rule = _rule_at(diagnostic, rules, diagnostic.witness["rule"])
    if not any(atom.relation == ACDOM for atom in rule.head):
        _fail(diagnostic, f"{ACDOM} does not occur in the rule head")


def _check_gap(diagnostic: Diagnostic, rule: Rule) -> set[Variable]:
    """Verify a guard-gap witness; returns the required variable set."""
    gap = diagnostic.witness.get("gap")
    if not gap:
        _fail(diagnostic, "missing guard-gap witness")
    required = {Variable(name) for name in gap["required"]}
    if not required:
        _fail(diagnostic, "empty required set is trivially guarded")
    body = list(rule.positive_body())
    entries = gap["atoms"]
    if len(entries) != len(body):
        _fail(diagnostic, "gap does not cover every positive body atom")
    for atom, entry in zip(body, entries):
        if str(atom) != entry["atom"]:
            _fail(diagnostic, f"gap atom {entry['atom']!r} is not {atom}")
        missing = {Variable(name) for name in entry["missing"]}
        if missing != required - atom.argument_variables():
            _fail(diagnostic, f"missing set for {atom} is wrong")
        if not missing:
            _fail(diagnostic, f"atom {atom} covers the required set")
    rule_variables = set()
    for atom in body:
        rule_variables |= atom.argument_variables()
    if not required <= rule_variables | set(rule.exist_vars):
        _fail(diagnostic, "required variables do not occur in the rule")
    return required


def _check_derivation(
    diagnostic: Diagnostic, rules: Sequence[Rule], entry: dict
) -> None:
    """Walk one unsafe-variable derivation, checking every step's premise."""
    established: set[Position] = set()
    for step in entry["derivation"]:
        position = _position(step["position"])
        rule = _rule_at(diagnostic, rules, step["rule"])
        variable = Variable(step["variable"])
        head_positions = set()
        for atom in rule.head:
            for index, term in enumerate(atom.args):
                if term == variable:
                    head_positions.add((atom.relation, index))
        if position not in head_positions:
            _fail(
                diagnostic,
                f"{variable.name} does not occur at {position} in the head "
                f"of rule {step['rule']}",
            )
        if step["kind"] == "existential":
            if variable not in rule.exist_vars:
                _fail(
                    diagnostic,
                    f"{variable.name} is not existential in rule {step['rule']}",
                )
        elif step["kind"] == "propagated":
            sources = {_position(raw) for raw in step["sources"]}
            if sources != variable_body_positions(rule, variable):
                _fail(
                    diagnostic,
                    f"sources of {variable.name} in rule {step['rule']} are "
                    "not its body positions",
                )
            if not sources <= established:
                _fail(
                    diagnostic,
                    f"premises of step at {position} not established earlier",
                )
        else:
            _fail(diagnostic, f"unknown derivation step kind {step['kind']!r}")
        established.add(position)
    body_positions = {_position(raw) for raw in entry["body_positions"]}
    if not body_positions:
        _fail(diagnostic, "unsafe variable with no body positions")
    if not body_positions <= established:
        _fail(
            diagnostic,
            f"derivation does not establish all body positions of "
            f"{entry['variable']}",
        )


def _replay_guard(diagnostic: Diagnostic, rules: Sequence[Rule]) -> None:
    rule = _rule_at(diagnostic, rules, diagnostic.rule_index)
    required = _check_gap(diagnostic, rule)
    if diagnostic.code == "GRD001":
        unsafe_entries = diagnostic.witness.get("unsafe", ())
        claimed = {Variable(entry["variable"]) for entry in unsafe_entries}
        if claimed != required:
            _fail(diagnostic, "unsafe entries do not match the required set")
        frontier = rule.argument_frontier()
        for entry in unsafe_entries:
            variable = Variable(entry["variable"])
            if variable not in frontier:
                _fail(diagnostic, f"{variable.name} is not a frontier variable")
            positions = {_position(raw) for raw in entry["body_positions"]}
            if positions != variable_body_positions(rule, variable):
                _fail(
                    diagnostic,
                    f"body positions of {variable.name} are misreported",
                )
            _check_derivation(diagnostic, rules, entry)


def _replay_weak_acyclicity(diagnostic: Diagnostic, rules: Sequence[Rule]) -> None:
    graph = position_dependency_graph(Theory(rules))
    edges = diagnostic.witness["cycle"]
    if not edges:
        _fail(diagnostic, "empty cycle")
    if not any(edge["special"] for edge in edges):
        _fail(diagnostic, "cycle has no special edge")
    for position, edge in enumerate(edges):
        source = _position(edge["source"])
        target = _position(edge["target"])
        edge_set = graph.special if edge["special"] else graph.regular
        if (source, target) not in edge_set:
            kind = "special" if edge["special"] else "regular"
            _fail(diagnostic, f"{source} -> {target} is not a {kind} edge")
        following = edges[(position + 1) % len(edges)]
        if target != _position(following["source"]):
            _fail(diagnostic, "cycle is not closed")


def _replay_evar_cycle(
    diagnostic: Diagnostic, rules: Sequence[Rule], edges: dict
) -> None:
    """A cycle over ``(rule, existential variable)`` nodes in ``edges``."""
    nodes = diagnostic.witness["cycle"]
    if not nodes:
        _fail(diagnostic, "empty cycle")
    keys = []
    for node in nodes:
        rule = _rule_at(diagnostic, rules, node["rule"])
        variable = Variable(node["variable"])
        if variable not in rule.exist_vars:
            _fail(
                diagnostic,
                f"{variable.name} is not existential in rule {node['rule']}",
            )
        keys.append((node["rule"], variable))
    for position, key in enumerate(keys):
        following = keys[(position + 1) % len(keys)]
        if following not in edges.get(key, ()):
            _fail(
                diagnostic,
                f"no existential dependency {key} -> {following}",
            )


def _replay_joint_acyclicity(diagnostic: Diagnostic, rules: Sequence[Rule]) -> None:
    _replay_evar_cycle(diagnostic, rules, joint_dependency_edges(Theory(rules)))


def _replay_super_weak_acyclicity(
    diagnostic: Diagnostic, rules: Sequence[Rule]
) -> None:
    _replay_evar_cycle(
        diagnostic, rules, super_weak_dependency_edges(Theory(rules))
    )


def _ground_tokens(
    diagnostic: Diagnostic, atom: Atom, assignment: dict
) -> tuple:
    terms = []
    for term in atom.all_terms:
        if isinstance(term, Constant):
            terms.append(("c", term.name))
        elif term in assignment:
            terms.append(assignment[term])
        else:
            _fail(diagnostic, f"variable {term} unbound in a trace step")
    return (atom.relation_key, tuple(terms))


def _contains_symbol(token: TermToken, symbol: tuple) -> bool:
    if token[0] == "c":
        return False
    if (token[1], token[2]) == symbol:
        return True
    return any(_contains_symbol(arg, symbol) for arg in token[3])


def _replay_mfa_cyclic(diagnostic: Diagnostic, rules: Sequence[Rule]) -> None:
    """Walk the critical-instance chase trace step by step: every body
    fact must hold in the instance built so far, skolem terms must be the
    canonical function of the frontier image, every claimed addition must
    be the grounded head — and the final step must mint a skolem term
    nested inside its own symbol."""
    witness = diagnostic.witness
    trace = witness.get("trace", ())
    cyclic = witness.get("cyclic")
    if not trace or not cyclic:
        _fail(diagnostic, "missing chase trace or cyclic term")
    database = critical_instance(Theory(rules))
    for number, step in enumerate(trace):
        rule = _rule_at(diagnostic, rules, step["rule"])
        assignment = {
            Variable(name): term_token_from_json(token)
            for name, token in step["assignment"].items()
        }
        frontier = sorted(rule.frontier(), key=lambda v: v.name)
        if any(variable not in assignment for variable in frontier):
            _fail(diagnostic, f"step {number} does not bind the frontier")
        image = tuple(assignment[variable] for variable in frontier)
        for evar in rule.exist_vars:
            expected: TermToken = ("f", step["rule"], evar.name, image)
            if assignment.get(evar) != expected:
                _fail(
                    diagnostic,
                    f"step {number}: skolem term of {evar.name} is not "
                    "determined by the frontier image",
                )
        for atom in rule.positive_body():
            if _ground_tokens(diagnostic, atom, assignment) not in database:
                _fail(
                    diagnostic,
                    f"step {number}: body atom {atom} does not hold in the "
                    "chased instance",
                )
        grounded = [
            _ground_tokens(diagnostic, atom, assignment) for atom in rule.head
        ]
        claimed = [
            (
                entry["relation"],
                tuple(term_token_from_json(raw) for raw in entry["terms"]),
            )
            for entry in step["added"]
        ]
        if [(fact[0][0], fact[1]) for fact in grounded] != claimed:
            _fail(
                diagnostic,
                f"step {number}: claimed additions are not the grounded head",
            )
        fresh = [fact for fact in grounded if fact not in database]
        if not fresh and number != len(trace) - 1:
            _fail(diagnostic, f"step {number} adds nothing new")
        database.update(grounded)
    term = term_token_from_json(cyclic["term"])
    last = trace[-1]
    if cyclic["rule"] != last["rule"]:
        _fail(diagnostic, "cyclic term is not minted by the final step")
    rule = _rule_at(diagnostic, rules, cyclic["rule"])
    if Variable(cyclic["evar"]) not in rule.exist_vars:
        _fail(
            diagnostic,
            f"{cyclic['evar']} is not existential in rule {cyclic['rule']}",
        )
    minted = last["assignment"].get(cyclic["evar"])
    if minted is None or term_token_from_json(minted) != term:
        _fail(diagnostic, "cyclic term differs from the final step's skolem")
    if term[0] != "f" or (term[1], term[2]) != (cyclic["rule"], cyclic["evar"]):
        _fail(diagnostic, "cyclic term does not belong to the claimed symbol")
    if not any(_contains_symbol(arg, (term[1], term[2])) for arg in term[3]):
        _fail(diagnostic, "cyclic term does not nest its own skolem symbol")


def _replay_cost_estimate(diagnostic: Diagnostic, rules: Sequence[Rule]) -> None:
    """EST bounds are a function of the position graph; recompute the
    degree/rank fixpoint and compare every claimed figure exactly."""
    estimate = estimate_chase_cost(Theory(rules))
    if estimate is None:
        _fail(diagnostic, "theory is not weakly acyclic; no bound derivable")
    cost = estimate.to_dict()
    witness = diagnostic.witness
    if diagnostic.code == "EST001":
        checks = (("relations", "relations"), ("total_degree", "total_degree"))
    else:
        checks = (("existentials", "existentials"), ("max_rank", "max_rank"))
    for witness_key, cost_key in checks:
        if witness.get(witness_key) != cost[cost_key]:
            _fail(
                diagnostic,
                f"claimed {witness_key} does not match a fresh estimate",
            )


def _replay_stratification(diagnostic: Diagnostic, rules: Sequence[Rule]) -> None:
    all_edges = set(dependency_edges(Theory(rules)))
    edges = diagnostic.witness["cycle"]
    if not edges:
        _fail(diagnostic, "empty cycle")
    if not any(edge["negative"] for edge in edges):
        _fail(diagnostic, "cycle has no negative edge")
    for position, edge in enumerate(edges):
        tupled = (edge["body"], edge["head"], edge["negative"], edge["rule"])
        if tupled not in all_edges:
            _fail(diagnostic, f"{tupled} is not a dependency edge")
        following = edges[(position + 1) % len(edges)]
        if edge["head"] != following["body"]:
            _fail(diagnostic, "cycle is not closed")


def _replay_dead_rule(diagnostic: Diagnostic, rules: Sequence[Rule]) -> None:
    witness = diagnostic.witness
    relation = witness["relation"]
    underivable = set(witness["underivable"])
    rule = _rule_at(diagnostic, rules, diagnostic.rule_index)
    if relation not in {atom.relation for atom in rule.positive_body()}:
        _fail(diagnostic, f"{relation} is not in the rule's positive body")
    if relation not in underivable:
        _fail(diagnostic, f"{relation} is not in the deadlocked set")
    # The deadlocked set is a certificate of underivability: every member
    # is defined only by rules that read another member positively.
    for member in underivable:
        if member == ACDOM:
            _fail(diagnostic, f"{ACDOM} is always derivable")
        defining = [
            candidate
            for candidate in rules
            if any(atom.relation == member for atom in candidate.head)
        ]
        if not defining:
            _fail(diagnostic, f"{member} is an EDB relation, hence derivable")
        for candidate in defining:
            body_relations = {
                atom.relation for atom in candidate.positive_body()
            }
            if not body_relations & underivable:
                _fail(
                    diagnostic,
                    f"a rule derives {member} from outside the deadlocked set",
                )


def _replay_unread_relation(diagnostic: Diagnostic, rules: Sequence[Rule]) -> None:
    witness = diagnostic.witness
    relation = witness["relation"]
    for rule in rules:
        if any(literal.relation == relation for literal in rule.body):
            _fail(diagnostic, f"{relation} is read by a rule body")
    defining = {
        index
        for index, rule in enumerate(rules)
        if any(atom.relation == relation for atom in rule.head)
    }
    if set(witness["defined_by"]) != defining or not defining:
        _fail(diagnostic, f"defining rules of {relation} are misreported")


_HANDLERS = {
    "PAR001": _replay_parse,
    "SCH001": _replay_schema_arity,
    "SCH002": _replay_schema_acdom,
    "GRD001": _replay_guard,
    "GRD002": _replay_guard,
    "GRD003": _replay_guard,
    "TRM001": _replay_weak_acyclicity,
    "TRM002": _replay_joint_acyclicity,
    "TRM003": _replay_super_weak_acyclicity,
    "TRM004": _replay_mfa_cyclic,
    "EST001": _replay_cost_estimate,
    "EST002": _replay_cost_estimate,
    "STR001": _replay_stratification,
    "RCH001": _replay_dead_rule,
    "RCH002": _replay_unread_relation,
}
