"""``repro.analysis`` — a diagnostic static analyzer for rule theories.

A multi-pass linter over parsed theories.  Each finding is a
:class:`Diagnostic` with a stable code, a severity, a source location
(threaded from the parser's spans), and a machine-checkable *witness*
that :func:`replay` verifies mechanically.  See DESIGN.md for the
diagnostic-code table and paper provenance.

Entry points::

    from repro.analysis import analyze, analyze_text

    report = analyze_text(open(path).read(), source=path)
    for diagnostic in report:
        print(diagnostic.location(), diagnostic.code, diagnostic.message)

The ``repro lint`` CLI is a thin wrapper over :func:`analyze_text`.
"""

from .advisor import (
    ADVICE_JSON_SCHEMA,
    ADVICE_SCHEMA_VERSION,
    StrategyAdvice,
    advise,
)
from .diagnostics import (
    CODES,
    REPORT_JSON_SCHEMA,
    REPORT_SCHEMA_VERSION,
    AnalysisReport,
    CodeInfo,
    Diagnostic,
    Severity,
)
from .passes import PASSES, AnalysisContext, analyze, analyze_text
from .replay import ReplayError, replay

__all__ = [
    "ADVICE_JSON_SCHEMA",
    "ADVICE_SCHEMA_VERSION",
    "AnalysisContext",
    "AnalysisReport",
    "CODES",
    "CodeInfo",
    "Diagnostic",
    "PASSES",
    "REPORT_JSON_SCHEMA",
    "REPORT_SCHEMA_VERSION",
    "ReplayError",
    "Severity",
    "StrategyAdvice",
    "advise",
    "analyze",
    "analyze_text",
    "replay",
]
