"""Command-line interface.

Installed as the ``repro`` console script::

    repro classify theory.rules
    repro chase theory.rules data.db --policy restricted --max-steps 10000
    repro answer theory.rules data.db --output Q     (alias: repro query)
    repro translate theory.rules --target datalog
    repro termination theory.rules
    repro advise theory.rules                (strategy advisor, JSON report)
    repro lint theory.rules --format json --fail-on warning
    repro lint --print-schema                (the lint report's JSON Schema)
    repro serve theory.rules --workers 4
    repro update 127.0.0.1:7464 --insert "e(a, b)" --retract "e(c, d)"
    repro tail 127.0.0.1:7465                (the server's ops port)
    repro soak --seed 7 --duration 30 --faults crash,delay,truncate,stall

Theories use the rule syntax of :mod:`repro.core.parser`; databases use
the data syntax (bare names are constants).

Every subcommand accepts ``--stats`` (print an instrumentation report —
phase timings and engine counters — to stderr after the normal output),
``--trace-json PATH`` (export JSON-lines spans and the final metrics
snapshot, see :mod:`repro.obs`), and ``--timeout SECONDS`` (a wall-clock
deadline installed as the ambient
:class:`~repro.robustness.governor.ResourceGovernor` for the whole
command).  ``repro chase --stats`` additionally prints a per-round
``# round …`` footer from the run's own
:class:`~repro.chase.runner.ChaseStats` snapshot.

Exit codes are uniform: ``0`` success, ``1`` failure, ``2`` parse/usage
error, ``3`` *exhausted* — a budget, deadline, or cancellation stopped
the computation before an answer was reached.  Exhausted runs print
whatever sound partial output they have plus an ``# exhausted`` marker.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from contextlib import nullcontext
from pathlib import Path

from . import __version__
from .analysis import (
    ADVICE_SCHEMA_VERSION,
    REPORT_JSON_SCHEMA,
    Severity,
    advise,
    analyze_text,
)
from .chase.runner import ChaseBudget, chase, try_certain_answers
from .chase.termination import (
    chase_terminates,
    find_joint_cycle,
    find_special_cycle,
    find_super_weak_cycle,
    mfa_check,
    position_dependency_graph,
)
from .core.database import Database
from .core.parser import ParseError, parse_database, parse_theory, render_theory
from .core.theory import Query, Theory
from .guardedness.classify import classify
from .guardedness.normalize import normalize
from .obs import JsonLinesSink, instrumented
from .robustness.errors import BudgetExceeded, Cancelled, InternalError, ReproError
from .robustness.governor import ResourceGovernor, governed
from .translate.annotations import rewrite_weakly_frontier_guarded
from .translate.expansion import rewrite_frontier_guarded
from .translate.pipeline import answer_query
from .translate.saturation import guarded_to_datalog, nearly_guarded_to_datalog

__all__ = [
    "main",
    "EXIT_OK",
    "EXIT_FAILED",
    "EXIT_PARSE",
    "EXIT_EXHAUSTED",
]

EXIT_OK = 0
EXIT_FAILED = 1
EXIT_PARSE = 2
#: A budget/deadline/cancellation stopped the run (distinct from failure:
#: partial output, when printed, is sound).
EXIT_EXHAUSTED = 3


def _load_theory(path: str) -> Theory:
    return parse_theory(Path(path).read_text(), source=path)


def _load_database(path: str) -> Database:
    return parse_database(Path(path).read_text())


def _add_budget_flags(parser: argparse.ArgumentParser) -> None:
    """The uniform chase-budget flags, identical on every subcommand that
    runs a chase (``chase``, ``answer``/``query``)."""
    parser.add_argument(
        "--max-steps",
        type=int,
        default=100_000,
        help="chase step budget (default 100000)",
    )
    parser.add_argument(
        "--max-depth",
        type=int,
        default=None,
        help="null-nesting depth budget (default unlimited)",
    )


def _budget_from_args(args: argparse.Namespace) -> ChaseBudget:
    return ChaseBudget(max_steps=args.max_steps, max_depth=args.max_depth)


def _cmd_classify(args: argparse.Namespace) -> int:
    theory = _load_theory(args.theory)
    labels = classify(theory)
    print(f"{len(theory)} rules over {len(theory.relations())} relations")
    names = labels.names()
    if names:
        for name in names:
            print(f"  {name}")
    else:
        print("  (none of the Figure 1 classes)")
    return 0


def _cmd_chase(args: argparse.Namespace) -> int:
    theory = _load_theory(args.theory)
    database = _load_database(args.database)
    result = chase(
        theory, database, policy=args.policy, budget=_budget_from_args(args)
    )
    status = "complete" if result.complete else f"truncated ({result.truncated_reason})"
    print(
        f"# chase {status}: {len(result.database)} atoms, "
        f"{result.nulls_created} nulls, {result.steps} steps"
    )
    for atom in sorted(result.database):
        print(atom)
    if args.stats:
        stats = result.stats
        print(
            f"# stats: rounds={result.rounds} "
            f"triggers_enumerated={stats.triggers_enumerated} "
            f"triggers_fired={stats.triggers_fired} "
            f"atoms_added={stats.atoms_added} "
            f"nulls_created={result.nulls_created}"
        )
        for r in stats.rounds:
            print(
                f"# round {r.round}: triggers={r.triggers_enumerated} "
                f"fired={r.triggers_fired} atoms={r.atoms_added} "
                f"nulls={r.nulls_created}"
            )
    return EXIT_OK if result.complete else EXIT_EXHAUSTED


def _print_answers(answers) -> None:
    for answer in sorted(answers, key=str):
        print("(" + ", ".join(term.name for term in answer) + ")")
    print(f"# {len(answers)} answers", file=sys.stderr)


def _cmd_answer(args: argparse.Namespace) -> int:
    theory = _load_theory(args.theory)
    database = _load_database(args.database)
    query = Query(theory, args.output)
    budget = _budget_from_args(args)
    if args.strategy == "chase":
        outcome = try_certain_answers(query, database, budget=budget)
        _print_answers(outcome.value)
        if not outcome.complete:
            print(
                f"# exhausted ({outcome.exhausted}): answers are sound "
                "but may be incomplete",
                file=sys.stderr,
            )
            return EXIT_EXHAUSTED
        return EXIT_OK
    answers = answer_query(query, database, budget=budget)
    _print_answers(answers)
    return EXIT_OK


def _cmd_translate(args: argparse.Namespace) -> int:
    theory = _load_theory(args.theory)
    if args.target == "datalog":
        labels = classify(theory)
        if labels.guarded:
            result = guarded_to_datalog(theory, max_rules=args.max_rules)
        else:
            result = nearly_guarded_to_datalog(
                normalize(theory).theory, max_rules=args.max_rules
            )
    elif args.target == "nearly-guarded":
        result = rewrite_frontier_guarded(
            normalize(theory).theory, max_rules=args.max_rules
        )
    elif args.target == "weakly-guarded":
        result = rewrite_weakly_frontier_guarded(
            theory, max_rules=args.max_rules
        ).theory
    else:  # pragma: no cover - argparse restricts choices
        raise InternalError(f"unhandled translate target {args.target!r}")
    print(render_theory(result))
    print(f"# {len(result)} rules", file=sys.stderr)
    return 0


def _cmd_termination(args: argparse.Namespace) -> int:
    theory = _load_theory(args.theory)
    terminates, reason = chase_terminates(theory, mfa_max_steps=args.mfa_steps)
    print(f"terminates: {'yes' if terminates else 'unknown'} ({reason})")
    if reason not in ("datalog", "weakly-acyclic"):
        cycle = find_special_cycle(position_dependency_graph(theory))
        if cycle is not None:
            print("not weakly acyclic: cycle through a special edge:")
            for source, target, special in cycle:
                arrow = "=>" if special else "->"
                print(
                    f"  ({source[0]},{source[1]}) {arrow} "
                    f"({target[0]},{target[1]})"
                )
    if reason not in ("datalog", "weakly-acyclic", "jointly-acyclic"):
        joint_cycle = find_joint_cycle(theory)
        if joint_cycle is not None:
            rendered = " -> ".join(
                f"{variable.name}@rule{index}" for index, variable in joint_cycle
            )
            print(f"not jointly acyclic: {rendered} -> (wraps)")
    if reason in ("model-faithful-acyclic", "unknown"):
        swa_cycle = find_super_weak_cycle(theory)
        if swa_cycle is not None:
            rendered = " -> ".join(
                f"{variable.name}@rule{index}" for index, variable in swa_cycle
            )
            print(f"not super-weakly acyclic: {rendered} -> (wraps)")
            result = mfa_check(theory, max_steps=args.mfa_steps or 512)
            print(
                f"critical-instance chase: {result.verdict} after "
                f"{result.steps} steps ({result.atoms} atoms, "
                f"null depth {result.depth})"
            )
    return 0 if terminates else 1


def _cmd_advise(args: argparse.Namespace) -> int:
    text = Path(args.theory).read_text()
    theory = parse_theory(text, source=args.theory)
    advice = advise(theory, mfa_max_steps=args.mfa_steps)
    if args.format == "json":
        report = {
            "schema_version": ADVICE_SCHEMA_VERSION,
            "source": args.theory,
            "rules": len(theory),
            "advice": advice.to_dict(),
        }
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(f"recommended strategy: {advice.recommended}")
        verdict = (
            f"proven ({advice.criterion})" if advice.terminates else "not proven"
        )
        print(f"chase termination: {verdict}")
        print("engines:")
        for engine, status in advice.engines.items():
            print(f"  {engine}: {status}")
        if advice.cost is not None:
            print(
                f"cost estimate: O(n^{advice.cost['total_degree']}) facts "
                f"per relation, null depth <= {advice.cost['max_rank']}"
            )
        for reason in advice.reasons:
            print(f"# {reason}")
    return EXIT_OK


def _cmd_lint(args: argparse.Namespace) -> int:
    if args.print_schema:
        print(json.dumps(REPORT_JSON_SCHEMA, indent=2, sort_keys=True))
        return EXIT_OK
    if args.theory is None:
        print("error: lint needs a theory file (or --print-schema)", file=sys.stderr)
        return EXIT_PARSE
    report = analyze_text(Path(args.theory).read_text(), source=args.theory)
    if args.format == "json":
        print(report.render_json())
    else:
        print(report.render_text())
    if report.by_code("PAR001"):
        return 2
    thresholds = {"error": Severity.ERROR, "warning": Severity.WARNING}
    threshold = thresholds.get(args.fail_on)
    if threshold is not None and report.at_least(threshold):
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .service.server import ServiceConfig, serve

    theory_text = None
    if args.theory is not None:
        theory_text = Path(args.theory).read_text()
        # Fail fast on syntax errors before binding any socket.
        parse_theory(theory_text, source=args.theory)
    database_text = ""
    if args.data is not None:
        database_text = Path(args.data).read_text()
        parse_database(database_text)
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        http_port=args.http_port,
        workers=args.workers,
        queue_limit=args.queue_limit,
        default_timeout=args.default_timeout,
        theory_text=theory_text,
        theory_source=args.theory or "<default>",
        database_text=database_text,
        strategy=args.strategy,
        strict=args.strict,
        allow_faults=args.allow_faults,
        registry_capacity=args.registry_capacity,
        max_rules=args.max_rules,
        drain_grace=args.drain_grace,
        trace=not args.no_trace,
        trace_sample=args.trace_sample,
        recent_traces=args.recent_traces,
        slow_traces=args.slow_traces,
        snapshot_dir=args.snapshot_dir,
    )
    print(
        f"repro {__version__} serving on {config.host}:{config.port} "
        f"(ops on :{config.http_port if config.http_port is not None else config.port + 1}, "
        f"{config.workers} workers)",
        file=sys.stderr,
    )
    asyncio.run(serve(config))
    print("repro serve: drained cleanly", file=sys.stderr)
    return EXIT_OK


def _parse_ops_address(address: str) -> tuple[str, int]:
    """``host:port`` (or bare ``port``) naming a server's ops plane."""
    host, _, port_text = address.rpartition(":")
    if not host:
        host = "127.0.0.1"
    try:
        return host, int(port_text)
    except ValueError:
        raise ParseError(
            f"bad address {address!r}: expected host:port of the ops plane"
        ) from None


def _cmd_tail(args: argparse.Namespace) -> int:
    """Follow a running server's flight recorder (``repro tail``)."""
    import time as _time

    from .service.client import ServiceError, debug_requests, fetch_trace
    from .service.tracing import (
        render_event_line,
        render_trace_line,
        render_trace_tree,
    )

    host, port = _parse_ops_address(args.address)
    try:
        if args.trace is not None:
            trace = fetch_trace(host, port, args.trace)
            if trace is None:
                print(
                    f"trace {args.trace} not held by the flight recorder "
                    "(evicted or unknown)",
                    file=sys.stderr,
                )
                return EXIT_FAILED
            print(render_trace_tree(trace))
            return EXIT_OK
        if args.slow:
            listing = debug_requests(host, port)
            for summary in listing.get("slowest", []):
                print(render_trace_line(summary))
            return EXIT_OK
        seen: set[str] = set()
        seen_events: set[str] = set()
        first_sweep = True
        while True:
            listing = debug_requests(host, port)
            if first_sweep and not listing.get("tracing", True):
                print(
                    "warning: server runs with tracing disabled (--no-trace);"
                    " nothing will appear",
                    file=sys.stderr,
                )
            # Service events (worker crashes, crash-loop backoff, shed
            # storms) interleave with request lines, rendered distinctly
            # so degradation pops out of the feed.  Both rings arrive
            # newest-first; replay unseen entries oldest-first so the
            # tail reads chronologically.
            for event in reversed(listing.get("events", [])):
                key = json.dumps(event, sort_keys=True)
                if key in seen_events:
                    continue
                seen_events.add(key)
                print(render_event_line(event), flush=True)
            for summary in reversed(listing.get("recent", [])):
                trace_id = summary.get("trace_id")
                if trace_id in seen:
                    continue
                seen.add(trace_id)
                print(render_trace_line(summary), flush=True)
            if args.once:
                return EXIT_OK
            first_sweep = False
            _time.sleep(args.interval)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_FAILED
    except KeyboardInterrupt:
        return EXIT_OK


def _cmd_update(args: argparse.Namespace) -> int:
    """Apply an insert/retract batch to a running server's live
    database (``repro update``)."""
    from .service.client import ServiceClient, ServiceError

    if not args.insert and not args.retract:
        print(
            "error: update needs at least one --insert or --retract fact",
            file=sys.stderr,
        )
        return EXIT_PARSE
    host, port = _parse_ops_address(args.address)
    theory_text = None
    if args.theory is not None:
        theory_text = Path(args.theory).read_text()
        parse_theory(theory_text, source=args.theory)  # fail fast, exit 2
    database = None
    if args.database is not None:
        database = Path(args.database).read_text()
        parse_database(database)
    try:
        with ServiceClient(host, port, timeout=args.request_timeout) as client:
            response = client.update(
                insert=args.insert,
                retract=args.retract,
                theory=args.theory_hash,
                theory_text=theory_text,
                database=database,
                timeout=args.request_timeout,
            )
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_FAILED
    if not response.get("ok"):
        error = response.get("error", {})
        print(
            f"error ({error.get('code', 'unknown')}): "
            f"{error.get('message', response)}",
            file=sys.stderr,
        )
        code = error.get("code")
        return EXIT_PARSE if code == "parse_error" else EXIT_FAILED
    if "db_key" not in response:
        # The worker exhausted a budget mid-update: the batch was not
        # applied; the reason rides in the standard exhausted shape.
        print(
            f"# exhausted ({response.get('exhausted', 'budget')}): "
            "update not applied",
            file=sys.stderr,
        )
        return EXIT_EXHAUSTED
    update = response.get("update", {})
    print(
        json.dumps(
            {
                "theory": response.get("theory"),
                "strategy": response.get("strategy"),
                "db_key": response.get("db_key"),
                "old_db_key": response.get("old_db_key"),
                "update": update,
            },
            indent=2,
            sort_keys=True,
        )
    )
    if update.get("fallback"):
        print(
            f"# fallback ({update['fallback']}): maintained by full "
            "recompute, not delta propagation",
            file=sys.stderr,
        )
    return EXIT_OK


def _cmd_soak(args: argparse.Namespace) -> int:
    """Seeded chaos soak against a live server (``repro soak``)."""
    from .chaos.soak import SOAK_FAULTS, SoakConfig, run_soak

    faults = tuple(
        part.strip() for part in args.faults.split(",") if part.strip()
    )
    unknown = [fault for fault in faults if fault not in SOAK_FAULTS]
    if unknown:
        print(
            f"error: unknown fault(s) {','.join(unknown)}; "
            f"choose from {','.join(SOAK_FAULTS)}",
            file=sys.stderr,
        )
        return EXIT_PARSE
    connect = None
    if args.connect is not None:
        host, port = _parse_ops_address(args.connect)
        http_port = args.connect_http or port + 1
        connect = (port, http_port)
    else:
        host = "127.0.0.1"
    config = SoakConfig(
        seed=args.seed,
        duration=args.duration,
        faults=faults,
        workers=args.workers,
        fault_rate=args.fault_rate,
        connect=connect,
        host=host,
    )
    report = run_soak(config)
    if args.report is not None:
        Path(args.report).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n"
        )
    print(
        f"soak seed={report['seed']} duration={report['duration_s']}s "
        f"requests={report['requests']} "
        f"proxy_faults={sum(report['proxy']['injected'].values())}",
        file=sys.stderr,
    )
    for label, count in report["outcomes"].items():
        print(f"  {label}: {count}", file=sys.stderr)
    if report["violations"]:
        for violation in report["violations"]:
            print(f"INVARIANT VIOLATION: {violation}", file=sys.stderr)
        print(
            f"soak FAILED: {len(report['violations'])} invariant "
            "violation(s)",
            file=sys.stderr,
        )
        return EXIT_FAILED
    print("soak passed: zero invariant violations", file=sys.stderr)
    return EXIT_OK


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Guarded existential rules: classify, chase, translate, answer.",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {__version__}",
    )
    obs_flags = argparse.ArgumentParser(add_help=False)
    obs_flags.add_argument(
        "--stats",
        action="store_true",
        help="print an instrumentation report (timings + counters) to stderr",
    )
    obs_flags.add_argument(
        "--trace-json",
        metavar="PATH",
        default=None,
        help="export JSON-lines spans and a final metrics record to PATH",
    )
    obs_flags.add_argument(
        "--timeout",
        type=float,
        metavar="SECONDS",
        default=None,
        help="wall-clock deadline for the whole command; exhaustion exits "
        f"with code {EXIT_EXHAUSTED}",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    p = commands.add_parser(
        "classify", help="Figure 1 class membership", parents=[obs_flags]
    )
    p.add_argument("theory")
    p.set_defaults(handler=_cmd_classify)

    p = commands.add_parser(
        "chase", help="run the chase and print the result", parents=[obs_flags]
    )
    p.add_argument("theory")
    p.add_argument("database")
    p.add_argument("--policy", choices=("oblivious", "restricted"), default="restricted")
    _add_budget_flags(p)
    p.set_defaults(handler=_cmd_chase)

    p = commands.add_parser(
        "answer",
        aliases=["query"],
        help="certain answers for an output relation",
        parents=[obs_flags],
    )
    p.add_argument("theory")
    p.add_argument("database")
    p.add_argument("--output", required=True, help="output relation name")
    p.add_argument(
        "--strategy", choices=("auto", "chase"), default="auto",
        help="auto = dispatch on guardedness class (Section 7 pipeline etc.)",
    )
    _add_budget_flags(p)
    p.set_defaults(handler=_cmd_answer)

    p = commands.add_parser(
        "translate", help="run a paper translation", parents=[obs_flags]
    )
    p.add_argument("theory")
    p.add_argument(
        "--target",
        choices=("datalog", "nearly-guarded", "weakly-guarded"),
        required=True,
    )
    p.add_argument("--max-rules", type=int, default=100_000)
    p.set_defaults(handler=_cmd_translate)

    p = commands.add_parser(
        "termination", help="static chase-termination check", parents=[obs_flags]
    )
    p.add_argument("theory")
    p.add_argument(
        "--mfa-steps", type=int, default=None, metavar="N",
        help="also climb to the MFA rung with an N-step critical-instance "
        "chase budget (default: graph criteria only)",
    )
    p.set_defaults(handler=_cmd_termination)

    p = commands.add_parser(
        "advise",
        help="strategy advisor: termination ladder, cost estimate, "
        "recommended engine (JSON report)",
        parents=[obs_flags],
    )
    p.add_argument("theory")
    p.add_argument("--format", choices=("json", "text"), default="json")
    p.add_argument(
        "--mfa-steps", type=int, default=2048, metavar="N",
        help="critical-instance chase budget for the MFA rung (default 2048)",
    )
    p.set_defaults(handler=_cmd_advise)

    p = commands.add_parser(
        "lint",
        help="static analysis: diagnostics with witnesses (see DESIGN.md)",
        parents=[obs_flags],
    )
    p.add_argument("theory", nargs="?", default=None)
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.add_argument(
        "--fail-on",
        choices=("error", "warning", "never"),
        default="error",
        help="exit 1 when a diagnostic at or above this severity is present "
        "(parse failures always exit 2)",
    )
    p.add_argument(
        "--print-schema", action="store_true",
        help="print the JSON Schema of the --format json report and exit",
    )
    p.set_defaults(handler=_cmd_lint)

    p = commands.add_parser(
        "serve",
        help="run the reasoning service (NDJSON query plane + ops plane)",
        parents=[obs_flags],
    )
    p.add_argument(
        "theory", nargs="?", default=None,
        help="default theory served to queries naming none (optional)",
    )
    p.add_argument(
        "--data", default=None,
        help="default database for queries carrying none",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7464)
    p.add_argument(
        "--http-port", type=int, default=None,
        help="ops (healthz/metrics) port (default: query port + 1)",
    )
    p.add_argument("--workers", type=int, default=2)
    p.add_argument(
        "--queue-limit", type=int, default=64,
        help="admission cap on outstanding requests; beyond it the "
        "server sheds with an 'overloaded' response",
    )
    p.add_argument(
        "--default-timeout", type=float, default=30.0,
        help="per-query deadline when the request carries no timeout",
    )
    p.add_argument(
        "--strategy", choices=("auto", "chase"), default="auto",
        help="answering strategy for the default theory and for queries "
        "that request none",
    )
    p.add_argument(
        "--strict", action="store_true",
        help="reject theories whose lint report contains errors",
    )
    p.add_argument(
        "--allow-faults", action="store_true",
        help="honor fault-injection fields in requests (tests/CI only)",
    )
    p.add_argument("--registry-capacity", type=int, default=32)
    p.add_argument("--max-rules", type=int, default=100_000)
    p.add_argument(
        "--drain-grace", type=float, default=10.0,
        help="seconds to let in-flight work finish on SIGTERM",
    )
    p.add_argument(
        "--no-trace", action="store_true",
        help="disable end-to-end request tracing and the flight recorder",
    )
    p.add_argument(
        "--trace-sample", type=int, default=16,
        help="deep-trace (capture worker spans for) 1 in N requests; "
        "explicit trace context and explain:true always deep-trace; "
        "0 = explicit-only",
    )
    p.add_argument(
        "--recent-traces", type=int, default=256,
        help="flight-recorder ring size: most recent traces kept",
    )
    p.add_argument(
        "--slow-traces", type=int, default=32,
        help="flight-recorder ring size: slowest traces kept",
    )
    p.add_argument(
        "--snapshot-dir", default=None,
        help="directory for materialization snapshots: complete "
        "materializations are persisted there and restarts warm from "
        "disk instead of re-chasing (default: no persistence)",
    )
    p.set_defaults(handler=_cmd_serve)

    p = commands.add_parser(
        "tail",
        help="follow a running server's flight recorder (live traces)",
    )
    p.add_argument(
        "address",
        help="ops-plane address of a running server, host:port "
        "(the --http-port, default query port + 1)",
    )
    p.add_argument(
        "--slow", action="store_true",
        help="show the slowest recorded requests instead of following "
        "new ones",
    )
    p.add_argument(
        "--trace", metavar="TRACE_ID", default=None,
        help="print one full span tree by trace id and exit",
    )
    p.add_argument(
        "--once", action="store_true",
        help="print the current recorder contents and exit (no follow)",
    )
    p.add_argument(
        "--interval", type=float, default=1.0,
        help="poll interval in seconds while following (default 1.0)",
    )
    p.set_defaults(handler=_cmd_tail, stats=False, trace_json=None, timeout=None)

    p = commands.add_parser(
        "update",
        help="apply an insert/retract batch to a running server's live "
        "database (incremental maintenance; see repro.incremental)",
    )
    p.add_argument(
        "address",
        help="query-plane address of a running server, host:port",
    )
    p.add_argument(
        "--insert", action="append", default=[], metavar="FACT",
        help="fact to insert, e.g. --insert 'e(a, b)' (repeatable)",
    )
    p.add_argument(
        "--retract", action="append", default=[], metavar="FACT",
        help="fact to retract (repeatable)",
    )
    p.add_argument(
        "--theory", default=None, metavar="FILE",
        help="rule file naming the theory to update (inline registration)",
    )
    p.add_argument(
        "--theory-hash", default=None, metavar="SHA256",
        help="content hash of an already-registered theory",
    )
    p.add_argument(
        "--database", default=None, metavar="FILE",
        help="data file (re)seeding the live database before the batch "
        "(default: the server's current live state)",
    )
    p.add_argument(
        "--request-timeout", type=float, default=60.0,
        help="per-request client timeout in seconds (default 60)",
    )
    p.set_defaults(handler=_cmd_update, stats=False, trace_json=None, timeout=None)

    p = commands.add_parser(
        "soak",
        help="seeded chaos soak: replay faulty traffic through the "
        "fault-injection proxy and check service invariants",
    )
    p.add_argument(
        "--seed", type=int, default=7,
        help="seed of the fault schedule and traffic plan (default 7); "
        "the same seed reproduces the same schedule byte-for-byte",
    )
    p.add_argument(
        "--duration", type=float, default=30.0,
        help="soak length in seconds (default 30)",
    )
    p.add_argument(
        "--faults", default="crash,delay,truncate,stall",
        help="comma-separated fault set: 'crash' is injected into "
        "workers, the rest are transport faults applied by the proxy "
        "(delay, truncate, stall, reset, disconnect)",
    )
    p.add_argument(
        "--workers", type=int, default=2,
        help="workers of the spawned server (ignored with --connect)",
    )
    p.add_argument(
        "--fault-rate", type=float, default=0.2,
        help="per-exchange fault probability (default 0.2)",
    )
    p.add_argument(
        "--report", metavar="PATH", default=None,
        help="write the full JSON soak report to PATH",
    )
    p.add_argument(
        "--connect", metavar="HOST:PORT", default=None,
        help="soak an already-running server's query plane instead of "
        "spawning one (it must run --allow-faults for worker faults)",
    )
    p.add_argument(
        "--connect-http", type=int, default=None,
        help="ops-plane port of the --connect server (default: port + 1)",
    )
    p.set_defaults(handler=_cmd_soak, stats=False, trace_json=None, timeout=None)

    return parser


def _invoke(args: argparse.Namespace) -> int:
    """Run the subcommand handler under the ambient governor implied by
    ``--timeout`` (if any)."""
    scope = (
        governed(ResourceGovernor(timeout=args.timeout))
        if args.timeout is not None
        else nullcontext()
    )
    with scope:
        return args.handler(args)


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if not (args.stats or args.trace_json):
            return _invoke(args)
        sinks = []
        if args.trace_json:
            try:
                stream = open(args.trace_json, "w", encoding="utf-8")
            except OSError as exc:
                print(
                    f"error: cannot open --trace-json target: {exc}",
                    file=sys.stderr,
                )
                return EXIT_PARSE
            sinks.append(JsonLinesSink(stream))
        with instrumented(*sinks) as instr:
            code = _invoke(args)
        if args.stats:
            print(instr.report(title=f"repro {args.command}"), file=sys.stderr)
        return code
    except ParseError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_PARSE
    except (Cancelled, BudgetExceeded) as exc:
        print(f"exhausted ({exc.reason}): {exc}", file=sys.stderr)
        return EXIT_EXHAUSTED
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_FAILED
    except BrokenPipeError:
        # Downstream closed the pipe (e.g. ``repro chase … | head``).
        # Redirect stdout to devnull so the interpreter's final flush
        # does not raise again, and exit like coreutils do (128+SIGPIPE).
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141


if __name__ == "__main__":
    raise SystemExit(main())
