"""Command-line interface.

Installed as the ``repro`` console script::

    repro classify theory.rules
    repro chase theory.rules data.db --policy restricted --max-steps 10000
    repro answer theory.rules data.db --output Q
    repro translate theory.rules --target datalog
    repro termination theory.rules
    repro lint theory.rules --format json --fail-on warning

Theories use the rule syntax of :mod:`repro.core.parser`; databases use
the data syntax (bare names are constants).

Every subcommand accepts ``--stats`` (print an instrumentation report —
phase timings and engine counters — to stderr after the normal output)
and ``--trace-json PATH`` (export JSON-lines spans and the final metrics
snapshot, see :mod:`repro.obs`).  ``repro chase --stats`` additionally
prints a per-round ``# round …`` footer from the run's own
:class:`~repro.chase.runner.ChaseStats` snapshot.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .analysis import Severity, analyze_text
from .chase.runner import ChaseBudget, certain_answers, chase
from .chase.termination import (
    chase_terminates,
    find_joint_cycle,
    find_special_cycle,
    position_dependency_graph,
)
from .core.database import Database
from .core.parser import ParseError, parse_database, parse_theory, render_theory
from .core.theory import Query, Theory
from .guardedness.classify import classify
from .guardedness.normalize import normalize
from .obs import JsonLinesSink, instrumented
from .translate.annotations import rewrite_weakly_frontier_guarded
from .translate.expansion import rewrite_frontier_guarded
from .translate.pipeline import answer_query
from .translate.saturation import guarded_to_datalog, nearly_guarded_to_datalog

__all__ = ["main"]


def _load_theory(path: str) -> Theory:
    return parse_theory(Path(path).read_text(), source=path)


def _load_database(path: str) -> Database:
    return parse_database(Path(path).read_text())


def _cmd_classify(args: argparse.Namespace) -> int:
    theory = _load_theory(args.theory)
    labels = classify(theory)
    print(f"{len(theory)} rules over {len(theory.relations())} relations")
    names = labels.names()
    if names:
        for name in names:
            print(f"  {name}")
    else:
        print("  (none of the Figure 1 classes)")
    return 0


def _cmd_chase(args: argparse.Namespace) -> int:
    theory = _load_theory(args.theory)
    database = _load_database(args.database)
    budget = ChaseBudget(max_steps=args.max_steps, max_depth=args.max_depth)
    result = chase(theory, database, policy=args.policy, budget=budget)
    status = "complete" if result.complete else f"truncated ({result.truncated_reason})"
    print(
        f"# chase {status}: {len(result.database)} atoms, "
        f"{result.nulls_created} nulls, {result.steps} steps"
    )
    for atom in sorted(result.database):
        print(atom)
    if args.stats:
        stats = result.stats
        print(
            f"# stats: rounds={result.rounds} "
            f"triggers_enumerated={stats.triggers_enumerated} "
            f"triggers_fired={stats.triggers_fired} "
            f"atoms_added={stats.atoms_added} "
            f"nulls_created={result.nulls_created}"
        )
        for r in stats.rounds:
            print(
                f"# round {r.round}: triggers={r.triggers_enumerated} "
                f"fired={r.triggers_fired} atoms={r.atoms_added} "
                f"nulls={r.nulls_created}"
            )
    return 0 if result.complete else 1


def _cmd_answer(args: argparse.Namespace) -> int:
    theory = _load_theory(args.theory)
    database = _load_database(args.database)
    query = Query(theory, args.output)
    if args.strategy == "chase":
        answers = certain_answers(
            query, database, budget=ChaseBudget(max_steps=args.max_steps)
        )
    else:
        answers = answer_query(
            query, database, budget=ChaseBudget(max_steps=args.max_steps)
        )
    for answer in sorted(answers, key=str):
        print("(" + ", ".join(term.name for term in answer) + ")")
    print(f"# {len(answers)} answers", file=sys.stderr)
    return 0


def _cmd_translate(args: argparse.Namespace) -> int:
    theory = _load_theory(args.theory)
    if args.target == "datalog":
        labels = classify(theory)
        if labels.guarded:
            result = guarded_to_datalog(theory, max_rules=args.max_rules)
        else:
            result = nearly_guarded_to_datalog(
                normalize(theory).theory, max_rules=args.max_rules
            )
    elif args.target == "nearly-guarded":
        result = rewrite_frontier_guarded(
            normalize(theory).theory, max_rules=args.max_rules
        )
    elif args.target == "weakly-guarded":
        result = rewrite_weakly_frontier_guarded(
            theory, max_rules=args.max_rules
        ).theory
    else:  # pragma: no cover - argparse restricts choices
        raise AssertionError(args.target)
    print(render_theory(result))
    print(f"# {len(result)} rules", file=sys.stderr)
    return 0


def _cmd_termination(args: argparse.Namespace) -> int:
    theory = _load_theory(args.theory)
    terminates, reason = chase_terminates(theory)
    print(f"terminates: {'yes' if terminates else 'unknown'} ({reason})")
    if reason in ("jointly-acyclic", "unknown"):
        cycle = find_special_cycle(position_dependency_graph(theory))
        if cycle is not None:
            print("not weakly acyclic: cycle through a special edge:")
            for source, target, special in cycle:
                arrow = "=>" if special else "->"
                print(
                    f"  ({source[0]},{source[1]}) {arrow} "
                    f"({target[0]},{target[1]})"
                )
    if reason == "unknown":
        joint_cycle = find_joint_cycle(theory)
        if joint_cycle is not None:
            rendered = " -> ".join(
                f"{variable.name}@rule{index}" for index, variable in joint_cycle
            )
            print(f"not jointly acyclic: {rendered} -> (wraps)")
    return 0 if terminates else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    report = analyze_text(Path(args.theory).read_text(), source=args.theory)
    if args.format == "json":
        print(report.render_json())
    else:
        print(report.render_text())
    if report.by_code("PAR001"):
        return 2
    thresholds = {"error": Severity.ERROR, "warning": Severity.WARNING}
    threshold = thresholds.get(args.fail_on)
    if threshold is not None and report.at_least(threshold):
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Guarded existential rules: classify, chase, translate, answer.",
    )
    obs_flags = argparse.ArgumentParser(add_help=False)
    obs_flags.add_argument(
        "--stats",
        action="store_true",
        help="print an instrumentation report (timings + counters) to stderr",
    )
    obs_flags.add_argument(
        "--trace-json",
        metavar="PATH",
        default=None,
        help="export JSON-lines spans and a final metrics record to PATH",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    p = commands.add_parser(
        "classify", help="Figure 1 class membership", parents=[obs_flags]
    )
    p.add_argument("theory")
    p.set_defaults(handler=_cmd_classify)

    p = commands.add_parser(
        "chase", help="run the chase and print the result", parents=[obs_flags]
    )
    p.add_argument("theory")
    p.add_argument("database")
    p.add_argument("--policy", choices=("oblivious", "restricted"), default="restricted")
    p.add_argument("--max-steps", type=int, default=100_000)
    p.add_argument("--max-depth", type=int, default=None)
    p.set_defaults(handler=_cmd_chase)

    p = commands.add_parser(
        "answer",
        help="certain answers for an output relation",
        parents=[obs_flags],
    )
    p.add_argument("theory")
    p.add_argument("database")
    p.add_argument("--output", required=True, help="output relation name")
    p.add_argument(
        "--strategy", choices=("auto", "chase"), default="auto",
        help="auto = dispatch on guardedness class (Section 7 pipeline etc.)",
    )
    p.add_argument("--max-steps", type=int, default=100_000)
    p.set_defaults(handler=_cmd_answer)

    p = commands.add_parser(
        "translate", help="run a paper translation", parents=[obs_flags]
    )
    p.add_argument("theory")
    p.add_argument(
        "--target",
        choices=("datalog", "nearly-guarded", "weakly-guarded"),
        required=True,
    )
    p.add_argument("--max-rules", type=int, default=100_000)
    p.set_defaults(handler=_cmd_translate)

    p = commands.add_parser(
        "termination", help="static chase-termination check", parents=[obs_flags]
    )
    p.add_argument("theory")
    p.set_defaults(handler=_cmd_termination)

    p = commands.add_parser(
        "lint",
        help="static analysis: diagnostics with witnesses (see DESIGN.md)",
        parents=[obs_flags],
    )
    p.add_argument("theory")
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.add_argument(
        "--fail-on",
        choices=("error", "warning", "never"),
        default="error",
        help="exit 1 when a diagnostic at or above this severity is present "
        "(parse failures always exit 2)",
    )
    p.set_defaults(handler=_cmd_lint)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if not (args.stats or args.trace_json):
            return args.handler(args)
        sinks = []
        if args.trace_json:
            try:
                stream = open(args.trace_json, "w", encoding="utf-8")
            except OSError as exc:
                print(
                    f"error: cannot open --trace-json target: {exc}",
                    file=sys.stderr,
                )
                return 2
            sinks.append(JsonLinesSink(stream))
        with instrumented(*sinks) as instr:
            code = args.handler(args)
        if args.stats:
            print(instr.report(title=f"repro {args.command}"), file=sys.stderr)
        return code
    except ParseError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
