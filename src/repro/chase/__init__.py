"""Chase engines: oblivious, restricted, stratified, and the chase tree."""

from .chase_tree import (
    ChaseTree,
    ChaseTreeNode,
    build_chase_tree,
    tree_decomposition,
    verify_proposition2,
)
from .runner import (
    OBLIVIOUS,
    RESTRICTED,
    SKOLEM,
    ChaseBudget,
    ChaseResult,
    ChaseStats,
    RoundStats,
    answers_in,
    certain_answers,
    chase,
    entails,
)
from .core_db import core_of, cores_isomorphic, is_core
from .stratified import stratified_answers, stratified_chase
from .termination import (
    chase_terminates,
    find_joint_cycle,
    find_special_cycle,
    is_jointly_acyclic,
    is_weakly_acyclic,
    joint_dependency_edges,
    position_dependency_graph,
)

__all__ = [
    "OBLIVIOUS",
    "RESTRICTED",
    "SKOLEM",
    "ChaseBudget",
    "ChaseResult",
    "ChaseStats",
    "ChaseTree",
    "ChaseTreeNode",
    "RoundStats",
    "answers_in",
    "build_chase_tree",
    "certain_answers",
    "chase",
    "chase_terminates",
    "core_of",
    "cores_isomorphic",
    "entails",
    "find_joint_cycle",
    "find_special_cycle",
    "is_core",
    "is_jointly_acyclic",
    "is_weakly_acyclic",
    "joint_dependency_edges",
    "position_dependency_graph",
    "stratified_answers",
    "stratified_chase",
    "tree_decomposition",
    "verify_proposition2",
]
