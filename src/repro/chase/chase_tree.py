"""Chase trees (Section 4, Definitions 5 and 6).

The chase of a database w.r.t. a *normal frontier-guarded* theory can be
arranged as a tree whose root stores the atoms over the original constants
and whose non-root nodes store atoms over at most ``m`` terms, ``m`` being
the maximal relation arity (Proposition 2).  The FG→NG translation of
Section 5 is proved correct against this representation, and Proposition 2
also yields a tree decomposition of the chase of width
``max(|terms(D)| + k, m)``.

This module constructs the chase tree alongside an oblivious chase run and
offers validators for the Proposition 2 invariants (P1)–(P3) plus the tree
decomposition extraction."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..core.atoms import Atom
from ..core.database import Database
from ..core.terms import Constant, Term
from ..core.theory import Theory
from ..guardedness.classify import is_frontier_guarded_rule
from ..guardedness.normalize import is_normal
from ..robustness.errors import InvalidTheoryError
from ..robustness.governor import ResourceGovernor, resolve_governor
from .runner import ChaseBudget, _Engine

__all__ = [
    "ChaseTreeNode",
    "ChaseTree",
    "build_chase_tree",
    "verify_proposition2",
    "tree_decomposition",
]


@dataclass
class ChaseTreeNode:
    """A node of the chase tree — a set of atoms plus tree links."""

    index: int
    atoms: set[Atom] = field(default_factory=set)
    parent: Optional["ChaseTreeNode"] = None
    children: list["ChaseTreeNode"] = field(default_factory=list)

    def terms(self) -> set[Term]:
        result: set[Term] = set()
        for atom in self.atoms:
            result |= atom.terms()
        return result

    def depth(self) -> int:
        node, depth = self, 0
        while node.parent is not None:
            node = node.parent
            depth += 1
        return depth

    def __repr__(self) -> str:
        return f"ChaseTreeNode#{self.index}({len(self.atoms)} atoms)"


class ChaseTree:
    """The tree of Definition 6."""

    def __init__(self, root_atoms: Iterable[Atom]) -> None:
        self.root = ChaseTreeNode(index=0, atoms=set(root_atoms))
        self.nodes: list[ChaseTreeNode] = [self.root]

    # ------------------------------------------------------------------
    def minimal_nodes(self, terms: set[Term]) -> list[ChaseTreeNode]:
        """All ``C``-minimal nodes (Definition 5): nodes containing ``C``
        whose parent does not contain ``C``.  Proposition 2 (P3) promises at
        most one; :func:`verify_proposition2` checks it."""
        minimal = []
        for node in self.nodes:
            if terms <= node.terms():
                parent = node.parent
                if parent is None or not terms <= parent.terms():
                    minimal.append(node)
        return minimal

    def minimal_node(self, terms: set[Term]) -> Optional[ChaseTreeNode]:
        candidates = self.minimal_nodes(terms)
        return candidates[0] if candidates else None

    def containing_node(self, terms: set[Term]) -> Optional[ChaseTreeNode]:
        for node in self.nodes:
            if terms <= node.terms():
                return node
        return None

    # ------------------------------------------------------------------
    def insert_atom(self, atom: Atom, frontier_image: set[Term]) -> ChaseTreeNode:
        """Insert a chase-produced atom per (C1)/(C2) of Definition 6.

        ``frontier_image`` is ``{h(x) : x ∈ fvars(σ)}`` for the applied rule
        and homomorphism — the anchor used when a new node is created."""
        atom_terms = atom.terms()
        target = self.minimal_node(atom_terms)
        if target is not None:  # (C1)
            target.atoms.add(atom)
            return target
        anchor = self.minimal_node(frontier_image)  # (C2)
        if anchor is None:
            # The frontier image involves fresh nulls not yet in the tree;
            # cannot happen for a proper chase order, but fall back to root.
            anchor = self.root
        node = ChaseTreeNode(index=len(self.nodes), atoms={atom}, parent=anchor)
        anchor.children.append(node)
        self.nodes.append(node)
        return node

    # ------------------------------------------------------------------
    def all_atoms(self) -> set[Atom]:
        atoms: set[Atom] = set()
        for node in self.nodes:
            atoms |= node.atoms
        return atoms

    def render(self, max_atoms_per_node: int = 8) -> str:
        """ASCII rendering (used by the Figure 2 example)."""
        lines: list[str] = []

        def visit(node: ChaseTreeNode, indent: str) -> None:
            shown = sorted(node.atoms)[:max_atoms_per_node]
            label = ", ".join(str(atom) for atom in shown)
            if len(node.atoms) > max_atoms_per_node:
                label += f", … (+{len(node.atoms) - max_atoms_per_node})"
            lines.append(f"{indent}[{node.index}] {label}")
            for child in node.children:
                visit(child, indent + "    ")

        visit(self.root, "")
        return "\n".join(lines)


def build_chase_tree(
    theory: Theory,
    database: Database,
    *,
    budget: Optional[ChaseBudget] = None,
    governor: Optional[ResourceGovernor] = None,
) -> tuple[ChaseTree, Database]:
    """Run the oblivious chase of a normal frontier-guarded theory and build
    the chase tree of Definition 6.  Returns ``(tree, chase_database)``.

    Requires a normal theory (singleton heads; existential rules guarded)
    whose rules are frontier-guarded.  When the budget or governor cuts
    the run short the partial tree is returned: every inserted atom still
    satisfies the (C1)/(C2) placement of Definition 6, so the
    Proposition 2 invariants hold on the truncated tree."""
    if not is_normal(theory):
        raise InvalidTheoryError(
            "chase trees are defined for normal theories (Prop. 1)"
        )
    for rule in theory:
        if not is_frontier_guarded_rule(rule):
            raise InvalidTheoryError(f"rule is not frontier-guarded: {rule}")

    root_atoms = set(database)
    for rule in theory:
        if rule.is_fact():
            root_atoms.add(rule.head[0])

    tree = ChaseTree(root_atoms)
    engine = _Engine(
        theory,
        database,
        policy="oblivious",
        budget=budget or ChaseBudget(),
        null_prefix="n",
        allow_negation=False,
        governor=resolve_governor(governor),
    )

    # Drive the engine trigger-by-trigger, mirroring each produced atom into
    # the tree.  We reuse the engine's bookkeeping but intercept additions.
    truncated = False
    while not truncated:
        if engine._limit_reason(tick=False) is not None:
            break
        triggers = engine._enumerate_triggers(None)
        if not triggers:
            break
        engine.rounds += 1
        for rule_index, rule, assignment in triggers:
            if engine._limit_reason(tick=True) is not None:
                truncated = True
                break
            before = set(engine.database.atoms())
            engine._apply(rule_index, rule, assignment)
            new_atoms = set(engine.database.atoms()) - before
            frontier_image = {assignment[v] for v in rule.frontier()}
            for atom in sorted(new_atoms):
                if atom not in tree.all_atoms():
                    tree.insert_atom(atom, frontier_image)
    return tree, engine.database


def verify_proposition2(
    tree: ChaseTree,
    theory: Theory,
    database: Database,
) -> dict[str, bool]:
    """Check the invariants (P1)–(P3) of Proposition 2 on a built tree."""
    max_arity = theory.max_arity()
    rule_constants = {
        rule.head[0].args[0]
        for rule in theory
        if rule.is_fact() and rule.head[0].arity == 1
    }
    all_rule_constants: set[Constant] = set()
    for rule in theory:
        all_rule_constants |= rule.constants()

    database_terms = set()
    for atom in database:
        database_terms |= atom.terms()

    p1 = len(tree.root.terms()) <= len(database_terms) + len(all_rule_constants)
    p2 = all(
        len(node.terms()) <= max_arity for node in tree.nodes if node is not tree.root
    )

    # P3: for every set C of terms realized by some node there is at most
    # one C-minimal node.  Checking all subsets is exponential; we check the
    # per-atom term sets and all singleton term sets, which is what the
    # constructions rely on.
    p3 = True
    candidate_sets: list[set[Term]] = []
    seen_terms: set[Term] = set()
    for node in tree.nodes:
        for atom in node.atoms:
            candidate_sets.append(atom.terms())
        seen_terms |= node.terms()
    candidate_sets.extend({term} for term in seen_terms)
    for terms in candidate_sets:
        if len(tree.minimal_nodes(terms)) > 1:
            p3 = False
            break
    return {"P1": p1, "P2": p2, "P3": p3}


def tree_decomposition(tree: ChaseTree):
    """Extract the tree decomposition ``(T, L)`` described after Prop. 2.

    Returns ``(edges, bags, width)`` where ``edges`` is a list of node-index
    pairs, ``bags`` maps node index → set of terms, and ``width`` is
    ``max |bag| - 1``."""
    edges = [
        (node.parent.index, node.index)
        for node in tree.nodes
        if node.parent is not None
    ]
    bags = {node.index: node.terms() for node in tree.nodes}
    width = max((len(bag) for bag in bags.values()), default=1) - 1
    return edges, bags, width
