"""The chase engine.

Implements the (oblivious) chase of Section 2 and the restricted (standard)
chase as an optimisation.  ``chase(Σ, D)`` is the union of a fair, possibly
infinite sequence of rule applications; it is a *universal solution*:
``Σ, D |= α`` iff ``α ∈ chase(Σ, D)`` for ground ``α``.

Because weakly guarded theories can have infinite chases, the engine runs
under an explicit :class:`ChaseBudget`; the returned :class:`ChaseResult`
records whether a fixpoint was reached (``complete``) or which budget cut
the run short.  Fairness is breadth-first: triggers are enumerated against
a per-round snapshot, so every applicable trigger is eventually fired.

Rules with negated body literals are supported *only* as building blocks of
the stratified semantics (:mod:`repro.chase.stratified`): a negated literal
``¬A(~t)`` is satisfied when the instantiated atom is absent from the
current database.  For stratified theories evaluated stratum-by-stratum
this coincides with Definition 23.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Optional

from ..core.atoms import Atom
from ..core.database import Database
from ..core.homomorphism import extends_to_head, homomorphisms
from ..core.rules import Rule
from ..core.terms import Constant, Null, Term, Variable
from ..core.theory import Query, Theory
from ..obs.runtime import current as _obs_current

__all__ = [
    "ChaseBudget",
    "ChaseResult",
    "ChaseStats",
    "RoundStats",
    "chase",
    "entails",
    "certain_answers",
    "OBLIVIOUS",
    "RESTRICTED",
    "SKOLEM",
]

OBLIVIOUS = "oblivious"
RESTRICTED = "restricted"
SKOLEM = "skolem"

#: Default guard against runaway chases; generous enough for the test scale.
_DEFAULT_MAX_STEPS = 200_000


@dataclass(frozen=True)
class ChaseBudget:
    """Resource limits for a chase run.

    ``None`` means unlimited.  ``max_depth`` bounds null nesting: a null
    created by a trigger whose body image contains a depth-``d`` null has
    depth ``d + 1``; triggers that would exceed the bound are skipped and
    the run is marked incomplete.
    """

    max_steps: Optional[int] = _DEFAULT_MAX_STEPS
    max_atoms: Optional[int] = None
    max_nulls: Optional[int] = None
    max_depth: Optional[int] = None
    max_rounds: Optional[int] = None


@dataclass(frozen=True)
class RoundStats:
    """Per-round chase counters (one breadth-first round)."""

    round: int
    triggers_enumerated: int
    triggers_fired: int
    atoms_added: int
    nulls_created: int


@dataclass
class ChaseStats:
    """Metrics snapshot carried by every :class:`ChaseResult`.

    Collected unconditionally — the cost is a handful of integer ops per
    *round* (not per trigger), so it does not need the ambient
    instrumentation layer to be active.
    """

    rounds: list[RoundStats] = field(default_factory=list)

    @property
    def triggers_enumerated(self) -> int:
        return sum(r.triggers_enumerated for r in self.rounds)

    @property
    def triggers_fired(self) -> int:
        return sum(r.triggers_fired for r in self.rounds)

    @property
    def atoms_added(self) -> int:
        return sum(r.atoms_added for r in self.rounds)

    def merge(self, other: "ChaseStats") -> None:
        """Append another run's rounds (used by the stratified chase)."""
        self.rounds.extend(other.rounds)


@dataclass
class ChaseResult:
    """Outcome of a chase run."""

    database: Database
    complete: bool
    steps: int
    rounds: int
    nulls_created: int
    truncated_reason: Optional[str] = None
    null_depths: dict[Null, int] = field(default_factory=dict)
    stats: ChaseStats = field(default_factory=ChaseStats)

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.complete


class _Engine:
    def __init__(
        self,
        theory: Theory,
        database: Database,
        policy: str,
        budget: ChaseBudget,
        null_prefix: str,
        allow_negation: bool,
    ) -> None:
        if policy not in (OBLIVIOUS, RESTRICTED, SKOLEM):
            raise ValueError(f"unknown chase policy {policy!r}")
        self.theory = theory
        self.database = database.copy()
        self.database.ensure_acdom_frozen()
        self.policy = policy
        self.budget = budget
        self.allow_negation = allow_negation
        self.null_counter = 0
        self.null_prefix = null_prefix
        self.fired: set[tuple[int, tuple[Term, ...]]] = set()
        # skolem policy: one null per (rule, existential var, frontier image)
        self.skolem_cache: dict[tuple, Null] = {}
        self.depths: dict[Term, int] = {}
        self.steps = 0
        self.rounds = 0
        self.nulls_created = 0
        self.truncated: Optional[str] = None
        # relation → [(rule index, body atom index)] for delta-driven
        # trigger discovery; rules are only visited when a delta atom
        # matches one of their body relations.
        self._body_index: dict[tuple, list[tuple[int, int]]] = {}
        for rule_index, rule in enumerate(theory):
            for atom_index, atom in enumerate(rule.positive_body()):
                self._body_index.setdefault(atom.relation_key, []).append(
                    (rule_index, atom_index)
                )
        if not allow_negation:
            for rule in theory:
                if rule.has_negation():
                    raise ValueError(
                        "plain chase does not support negation; "
                        "use repro.chase.stratified for stratified theories"
                    )

    # ------------------------------------------------------------------
    def _fresh_null(self) -> Null:
        while True:
            null = Null(f"{self.null_prefix}{self.null_counter}")
            self.null_counter += 1
            if null not in self.database.terms():
                return null

    def _depth(self, term: Term) -> int:
        return self.depths.get(term, 0)

    def _over_budget(self) -> Optional[str]:
        budget = self.budget
        if budget.max_steps is not None and self.steps >= budget.max_steps:
            return "max_steps"
        if budget.max_atoms is not None and len(self.database) >= budget.max_atoms:
            return "max_atoms"
        if budget.max_nulls is not None and self.nulls_created >= budget.max_nulls:
            return "max_nulls"
        return None

    def _negation_blocked(self, rule: Rule, assignment: dict[Variable, Term]) -> bool:
        for negated in rule.negative_body():
            grounded = negated.atom.substitute(assignment)
            if grounded in self.database:
                return True
        return False

    def _trigger_key(self, rule_index: int, rule: Rule, assignment) -> tuple:
        ordered = tuple(
            assignment[variable]
            for variable in sorted(rule.uvars(), key=lambda v: v.name)
        )
        return (rule_index, ordered)

    def _enumerate_triggers(
        self, delta: Optional[set[Atom]]
    ) -> list[tuple[int, Rule, dict[Variable, Term]]]:
        """Unfired triggers against the current database.

        ``delta=None`` (first round) enumerates everything; afterwards a
        trigger must use at least one atom added in the previous round
        (semi-naive discovery — every new trigger involves a new atom)."""
        triggers = []
        seen_keys: set[tuple] = set()

        def consider(rule_index: int, rule: Rule, assignment) -> None:
            key = self._trigger_key(rule_index, rule, assignment)
            if key in self.fired or key in seen_keys:
                return
            if self._negation_blocked(rule, assignment):
                return
            seen_keys.add(key)
            triggers.append((rule_index, rule, assignment))

        if delta is None:
            for rule_index, rule in enumerate(self.theory):
                body = list(rule.positive_body())
                for assignment in homomorphisms(body, self.database):
                    consider(rule_index, rule, assignment)
        else:
            delta_by_relation: dict[tuple, list[Atom]] = {}
            for fact in delta:
                delta_by_relation.setdefault(fact.relation_key, []).append(fact)
            rules = self.theory.rules
            for relation_key, facts in delta_by_relation.items():
                for rule_index, atom_index in self._body_index.get(
                    relation_key, ()
                ):
                    rule = rules[rule_index]
                    body = list(rule.positive_body())
                    for assignment in homomorphisms(
                        body, self.database, forced=(atom_index, facts)
                    ):
                        consider(rule_index, rule, assignment)
        # deterministic firing order
        triggers.sort(
            key=lambda item: (
                item[0],
                tuple(
                    str(item[2][variable])
                    for variable in sorted(item[1].uvars(), key=lambda v: v.name)
                ),
            )
        )
        return triggers

    def _apply(
        self, rule_index: int, rule: Rule, assignment: dict[Variable, Term]
    ) -> set[Atom]:
        """Fire one trigger.  Returns the atoms actually added."""
        key = self._trigger_key(rule_index, rule, assignment)
        self.fired.add(key)
        if self.policy == RESTRICTED and extends_to_head(
            rule.head, rule.exist_vars, self.database, assignment
        ):
            return set()
        trigger_depth = max(
            (self._depth(term) for term in assignment.values()), default=0
        )
        if rule.exist_vars and self.budget.max_depth is not None:
            if trigger_depth + 1 > self.budget.max_depth:
                self.truncated = "max_depth"
                return set()
        mapping: dict[Term, Term] = dict(assignment)
        frontier_image = tuple(
            assignment[v] for v in sorted(rule.frontier(), key=lambda v: v.name)
        )
        for variable in rule.exist_vars:
            if self.policy == SKOLEM:
                skolem_key = (rule_index, variable.name, frontier_image)
                null = self.skolem_cache.get(skolem_key)
                if null is None:
                    null = self._fresh_null()
                    self.skolem_cache[skolem_key] = null
                    self.depths[null] = trigger_depth + 1
                    self.nulls_created += 1
            else:
                null = self._fresh_null()
                self.depths[null] = trigger_depth + 1
                self.nulls_created += 1
            mapping[variable] = null
        added: set[Atom] = set()
        for atom in rule.head:
            grounded = atom.substitute(mapping)
            if self.database.add(grounded):
                added.add(grounded)
        self.steps += 1
        return added

    def run(self) -> ChaseResult:
        obs = _obs_current()
        stats = ChaseStats()
        run_span = (
            obs.span("chase", policy=self.policy, rules=len(self.theory))
            if obs is not None
            else nullcontext()
        )
        with run_span as span:
            delta: Optional[set[Atom]] = None
            while True:
                reason = self._over_budget()
                if reason is not None:
                    self.truncated = reason
                    break
                if (
                    self.budget.max_rounds is not None
                    and self.rounds >= self.budget.max_rounds
                ):
                    self.truncated = "max_rounds"
                    break
                triggers = self._enumerate_triggers(delta)
                if not triggers:
                    break
                self.rounds += 1
                steps_before = self.steps
                nulls_before = self.nulls_created
                stop = False
                round_added: set[Atom] = set()
                for rule_index, rule, assignment in triggers:
                    reason = self._over_budget()
                    if reason is not None:
                        self.truncated = reason
                        stop = True
                        break
                    round_added |= self._apply(rule_index, rule, assignment)
                delta = round_added
                round_stats = RoundStats(
                    round=self.rounds,
                    triggers_enumerated=len(triggers),
                    triggers_fired=self.steps - steps_before,
                    atoms_added=len(round_added),
                    nulls_created=self.nulls_created - nulls_before,
                )
                stats.rounds.append(round_stats)
                if obs is not None:
                    obs.inc(
                        "chase.triggers_enumerated", round_stats.triggers_enumerated
                    )
                    obs.inc("triggers_fired", round_stats.triggers_fired)
                    obs.inc("atoms_derived", round_stats.atoms_added)
                    obs.inc("nulls_created", round_stats.nulls_created)
                    obs.observe("chase.delta_size", round_stats.atoms_added)
                if stop:
                    break
            if obs is not None:
                obs.inc("chase.rounds", self.rounds)
                span.set(
                    atoms=len(self.database),
                    steps=self.steps,
                    rounds=self.rounds,
                    nulls=self.nulls_created,
                    truncated=self.truncated,
                )
        complete = self.truncated is None
        return ChaseResult(
            database=self.database,
            complete=complete,
            steps=self.steps,
            rounds=self.rounds,
            nulls_created=self.nulls_created,
            truncated_reason=self.truncated,
            null_depths={
                term: depth
                for term, depth in self.depths.items()
                if isinstance(term, Null)
            },
            stats=stats,
        )


def chase(
    theory: Theory,
    database: Database,
    *,
    policy: str = OBLIVIOUS,
    budget: Optional[ChaseBudget] = None,
    null_prefix: str = "n",
    _allow_negation: bool = False,
) -> ChaseResult:
    """Run the chase of ``database`` with ``theory``.

    ``policy=OBLIVIOUS`` fires every trigger exactly once (the paper's
    definition, Section 2); ``policy=RESTRICTED`` skips triggers whose head
    is already satisfied — smaller results, same certain answers;
    ``policy=SKOLEM`` (semi-oblivious) reuses one null per (rule,
    existential variable, frontier image) — the semantics under which
    joint acyclicity guarantees termination.
    """
    engine = _Engine(
        theory,
        database,
        policy,
        budget or ChaseBudget(),
        null_prefix,
        _allow_negation,
    )
    return engine.run()


def entails(
    theory: Theory,
    database: Database,
    atom: Atom,
    *,
    budget: Optional[ChaseBudget] = None,
    policy: str = RESTRICTED,
) -> bool:
    """Check ``Σ, D |= α`` for a ground atom ``α`` via the chase.

    Uses the restricted chase by default (sound and complete for ground
    atomic entailment when the chase terminates).  Raises ``RuntimeError``
    when the budget is exhausted before the atom is derived — in that case
    entailment is unknown.
    """
    if not atom.is_ground():
        raise ValueError(f"entailment is defined for ground atoms, got {atom}")
    result = chase(theory, database, policy=policy, budget=budget)
    if atom in result.database:
        return True
    if not result.complete:
        raise RuntimeError(
            f"chase truncated ({result.truncated_reason}); entailment undecided"
        )
    return False


def certain_answers(
    query: Query,
    database: Database,
    *,
    budget: Optional[ChaseBudget] = None,
    policy: str = RESTRICTED,
) -> set[tuple[Constant, ...]]:
    """``ans((Σ,Q), D)`` — constant tuples ``~c`` with ``Q(~c)`` in the chase.

    Per Section 2 only all-constant tuples are answers; tuples containing
    nulls are filtered out.  Raises ``RuntimeError`` on budget exhaustion
    (the answer set would be unreliable).
    """
    result = chase(query.theory, database, policy=policy, budget=budget)
    if not result.complete:
        raise RuntimeError(
            f"chase truncated ({result.truncated_reason}); answers unreliable"
        )
    return answers_in(result.database, query.output)


def answers_in(database: Database, output: str) -> set[tuple[Constant, ...]]:
    """Extract all-constant ``output`` tuples from a database."""
    tuples: set[tuple[Constant, ...]] = set()
    for key in database.relations():
        if key[0] != output:
            continue
        for atom in database.atoms_for(key):
            if all(isinstance(term, Constant) for term in atom.args):
                tuples.add(tuple(atom.args))  # type: ignore[arg-type]
    return tuples
