"""The chase engine.

Implements the (oblivious) chase of Section 2 and the restricted (standard)
chase as an optimisation.  ``chase(Σ, D)`` is the union of a fair, possibly
infinite sequence of rule applications; it is a *universal solution*:
``Σ, D |= α`` iff ``α ∈ chase(Σ, D)`` for ground ``α``.

Because weakly guarded theories can have infinite chases, the engine runs
under an explicit :class:`ChaseBudget` and an optional
:class:`~repro.robustness.governor.ResourceGovernor` (wall-clock deadline +
cooperative cancellation, ticked once per applied trigger); the returned
:class:`ChaseResult` records whether a fixpoint was reached (``complete``)
or which budget cut the run short.  Fairness is breadth-first: triggers are
enumerated against a per-round snapshot, so every applicable trigger is
eventually fired.

Interrupted runs are *resumable*: a truncated :class:`ChaseResult` carries
a :class:`ChaseSnapshot` — the full engine state including the unfired
remainder of the current round — and :func:`resume_chase` continues it
under a fresh budget.  Because the snapshot preserves the exact pending
trigger order and the null counter, a resumed run produces a final result
*identical* (same atoms, same null names, same step count) to the
uninterrupted run.

Rules with negated body literals are supported *only* as building blocks of
the stratified semantics (:mod:`repro.chase.stratified`): a negated literal
``¬A(~t)`` is satisfied when the instantiated atom is absent from the
current database.  For stratified theories evaluated stratum-by-stratum
this coincides with Definition 23.
"""

from __future__ import annotations

from collections import deque
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Optional

from ..core.atoms import Atom
from ..core.database import Database
from ..core.homomorphism import extends_to_head, homomorphisms
from ..core.rules import Rule
from ..core.terms import Constant, Null, Term, Variable
from ..core.theory import Query, Theory
from ..obs.runtime import current as _obs_current
from ..robustness.errors import (
    InvalidRequestError,
    InvalidTheoryError,
    exhausted_error,
)
from ..robustness.governor import ResourceGovernor, resolve_governor
from ..robustness.outcome import Outcome

__all__ = [
    "ChaseBudget",
    "ChaseResult",
    "ChaseSnapshot",
    "ChaseStats",
    "RoundStats",
    "chase",
    "extend_chase",
    "resume_chase",
    "entails",
    "certain_answers",
    "try_certain_answers",
    "OBLIVIOUS",
    "RESTRICTED",
    "SKOLEM",
]

OBLIVIOUS = "oblivious"
RESTRICTED = "restricted"
SKOLEM = "skolem"

#: Default guard against runaway chases; generous enough for the test scale.
_DEFAULT_MAX_STEPS = 200_000


@dataclass(frozen=True)
class ChaseBudget:
    """Resource limits for a chase run.

    ``None`` means unlimited.  ``max_depth`` bounds null nesting: a null
    created by a trigger whose body image contains a depth-``d`` null has
    depth ``d + 1``; triggers that would exceed the bound are skipped and
    the run is marked incomplete.
    """

    max_steps: Optional[int] = _DEFAULT_MAX_STEPS
    max_atoms: Optional[int] = None
    max_nulls: Optional[int] = None
    max_depth: Optional[int] = None
    max_rounds: Optional[int] = None


@dataclass(frozen=True)
class RoundStats:
    """Per-round chase counters (one breadth-first round).

    A round interrupted by a budget produces one entry for the partial
    round; if the run is resumed, the remainder of that round is reported
    as a further entry with the same ``round`` number.
    """

    round: int
    triggers_enumerated: int
    triggers_fired: int
    atoms_added: int
    nulls_created: int


@dataclass
class ChaseStats:
    """Metrics snapshot carried by every :class:`ChaseResult`.

    Collected unconditionally — the cost is a handful of integer ops per
    *round* (not per trigger), so it does not need the ambient
    instrumentation layer to be active.
    """

    rounds: list[RoundStats] = field(default_factory=list)

    @property
    def triggers_enumerated(self) -> int:
        return sum(r.triggers_enumerated for r in self.rounds)

    @property
    def triggers_fired(self) -> int:
        return sum(r.triggers_fired for r in self.rounds)

    @property
    def atoms_added(self) -> int:
        return sum(r.atoms_added for r in self.rounds)

    def merge(self, other: "ChaseStats") -> None:
        """Append another run's rounds (used by the stratified chase)."""
        self.rounds.extend(other.rounds)


@dataclass
class ChaseSnapshot:
    """Full engine state of an interrupted chase run (checkpoint).

    In-memory resume handle: pass to :func:`resume_chase` with a fresh
    budget.  Preserves the unfired remainder of the current round
    (``pending``) and the null counter, so the continuation replays
    exactly the suffix of the uninterrupted run.
    """

    theory: Theory
    policy: str
    null_prefix: str
    allow_negation: bool
    database: Database
    fired: set[tuple[int, tuple[Term, ...]]]
    skolem_cache: dict[tuple, Null]
    depths: dict[Term, int]
    null_counter: int
    steps: int
    rounds: int
    nulls_created: int
    started: bool
    delta: Optional[set[Atom]]
    pending: list[tuple[int, Rule, dict[Variable, Term]]]
    round_added: set[Atom]
    rb_triggers: int
    rb_steps: int
    rb_atoms: int
    rb_nulls: int
    stats_rounds: list[RoundStats]


@dataclass
class ChaseResult:
    """Outcome of a chase run.

    ``complete`` distinguishes a reached fixpoint from a truncated run;
    truncated results are *sound but incomplete* (every atom present is a
    consequence) and carry a resume ``snapshot``.
    """

    database: Database
    complete: bool
    steps: int
    rounds: int
    nulls_created: int
    truncated_reason: Optional[str] = None
    null_depths: dict[Null, int] = field(default_factory=dict)
    stats: ChaseStats = field(default_factory=ChaseStats)
    snapshot: Optional[ChaseSnapshot] = None

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.complete


class _Engine:
    def __init__(
        self,
        theory: Theory,
        database: Database,
        policy: str,
        budget: ChaseBudget,
        null_prefix: str,
        allow_negation: bool,
        governor: Optional[ResourceGovernor] = None,
    ) -> None:
        if policy not in (OBLIVIOUS, RESTRICTED, SKOLEM):
            raise InvalidTheoryError(f"unknown chase policy {policy!r}")
        self.theory = theory
        self.database = database.copy()
        self.database.ensure_acdom_frozen()
        self.policy = policy
        self.budget = budget
        self.governor = governor
        self.allow_negation = allow_negation
        self.null_counter = 0
        self.null_prefix = null_prefix
        self.fired: set[tuple[int, tuple[Term, ...]]] = set()
        # skolem policy: one null per (rule, existential var, frontier image)
        self.skolem_cache: dict[tuple, Null] = {}
        self.depths: dict[Term, int] = {}
        self.steps = 0
        self.rounds = 0
        self.nulls_created = 0
        self.truncated: Optional[str] = None
        self.stats = ChaseStats()
        # round-in-progress state (persisted by snapshots): the unfired
        # remainder of the current round, the atoms it added so far, and
        # the reporting baselines for split RoundStats entries.
        self._started = False
        self._delta: Optional[set[Atom]] = None
        self._pending: deque[tuple[int, Rule, dict[Variable, Term]]] = deque()
        self._round_added: set[Atom] = set()
        self._rb_triggers = 0
        self._rb_steps = 0
        self._rb_atoms = 0
        self._rb_nulls = 0
        # relation → [(rule index, body atom index)] for delta-driven
        # trigger discovery; rules are only visited when a delta atom
        # matches one of their body relations.  Bodies and sorted
        # universal-variable tuples are computed once here: trigger
        # enumeration and keying re-use them every round (and the stable
        # body tuples key the join-plan cache).
        self._body_index: dict[tuple, list[tuple[int, int]]] = {}
        self._bodies: list[tuple[Atom, ...]] = []
        self._sorted_uvars: list[tuple[Variable, ...]] = []
        self._sorted_frontiers: list[tuple[Variable, ...]] = []
        for rule_index, rule in enumerate(theory):
            body = tuple(rule.positive_body())
            self._bodies.append(body)
            self._sorted_uvars.append(
                tuple(sorted(rule.uvars(), key=lambda v: v.name))
            )
            self._sorted_frontiers.append(
                tuple(sorted(rule.frontier(), key=lambda v: v.name))
            )
            for atom_index, atom in enumerate(body):
                self._body_index.setdefault(atom.relation_key, []).append(
                    (rule_index, atom_index)
                )
        if not allow_negation:
            for rule in theory:
                if rule.has_negation():
                    raise InvalidTheoryError(
                        "plain chase does not support negation; "
                        "use repro.chase.stratified for stratified theories"
                    )

    # ------------------------------------------------------------------
    @classmethod
    def from_snapshot(
        cls,
        snapshot: ChaseSnapshot,
        budget: ChaseBudget,
        governor: Optional[ResourceGovernor] = None,
    ) -> "_Engine":
        engine = cls(
            snapshot.theory,
            snapshot.database,
            snapshot.policy,
            budget,
            snapshot.null_prefix,
            snapshot.allow_negation,
            governor=governor,
        )
        engine.fired = set(snapshot.fired)
        engine.skolem_cache = dict(snapshot.skolem_cache)
        engine.depths = dict(snapshot.depths)
        engine.null_counter = snapshot.null_counter
        engine.steps = snapshot.steps
        engine.rounds = snapshot.rounds
        engine.nulls_created = snapshot.nulls_created
        engine._started = snapshot.started
        engine._delta = set(snapshot.delta) if snapshot.delta is not None else None
        engine._pending = deque(snapshot.pending)
        engine._round_added = set(snapshot.round_added)
        engine._rb_triggers = snapshot.rb_triggers
        engine._rb_steps = snapshot.rb_steps
        engine._rb_atoms = snapshot.rb_atoms
        engine._rb_nulls = snapshot.rb_nulls
        engine.stats = ChaseStats(rounds=list(snapshot.stats_rounds))
        return engine

    def snapshot(self) -> ChaseSnapshot:
        return ChaseSnapshot(
            theory=self.theory,
            policy=self.policy,
            null_prefix=self.null_prefix,
            allow_negation=self.allow_negation,
            database=self.database.copy(),
            fired=set(self.fired),
            skolem_cache=dict(self.skolem_cache),
            depths=dict(self.depths),
            null_counter=self.null_counter,
            steps=self.steps,
            rounds=self.rounds,
            nulls_created=self.nulls_created,
            started=self._started,
            delta=set(self._delta) if self._delta is not None else None,
            pending=list(self._pending),
            round_added=set(self._round_added),
            rb_triggers=self._rb_triggers,
            rb_steps=self._rb_steps,
            rb_atoms=self._rb_atoms,
            rb_nulls=self._rb_nulls,
            stats_rounds=list(self.stats.rounds),
        )

    # ------------------------------------------------------------------
    def _fresh_null(self) -> Null:
        while True:
            null = Null(f"{self.null_prefix}{self.null_counter}")
            self.null_counter += 1
            if not self.database.has_term(null):
                return null

    def _depth(self, term: Term) -> int:
        return self.depths.get(term, 0)

    def _over_budget(self) -> Optional[str]:
        budget = self.budget
        if budget.max_steps is not None and self.steps >= budget.max_steps:
            return "max_steps"
        if budget.max_atoms is not None and len(self.database) >= budget.max_atoms:
            return "max_atoms"
        if budget.max_nulls is not None and self.nulls_created >= budget.max_nulls:
            return "max_nulls"
        return None

    def _limit_reason(self, tick: bool) -> Optional[str]:
        """Count budgets first, then the governor (one tick per trigger)."""
        reason = self._over_budget()
        if reason is not None:
            return reason
        if self.governor is not None:
            return self.governor.tick() if tick else self.governor.poll()
        return None

    def _negation_blocked(self, rule: Rule, assignment: dict[Variable, Term]) -> bool:
        for negated in rule.negative_body():
            grounded = negated.atom.substitute(assignment)
            if grounded in self.database:
                return True
        return False

    def _trigger_key(self, rule_index: int, rule: Rule, assignment) -> tuple:
        ordered = tuple(
            assignment[variable] for variable in self._sorted_uvars[rule_index]
        )
        return (rule_index, ordered)

    def _enumerate_triggers(
        self, delta: Optional[set[Atom]]
    ) -> list[tuple[int, Rule, dict[Variable, Term]]]:
        """Unfired triggers against the current database.

        ``delta=None`` (first round) enumerates everything; afterwards a
        trigger must use at least one atom added in the previous round
        (semi-naive discovery — every new trigger involves a new atom)."""
        triggers = []
        seen_keys: set[tuple] = set()

        def consider(rule_index: int, rule: Rule, assignment) -> None:
            key = self._trigger_key(rule_index, rule, assignment)
            if key in self.fired or key in seen_keys:
                return
            if self._negation_blocked(rule, assignment):
                return
            seen_keys.add(key)
            triggers.append((rule_index, rule, assignment))

        if delta is None:
            for rule_index, rule in enumerate(self.theory):
                body = self._bodies[rule_index]
                for assignment in homomorphisms(body, self.database):
                    consider(rule_index, rule, assignment)
        else:
            delta_by_relation: dict[tuple, list[Atom]] = {}
            for fact in delta:
                delta_by_relation.setdefault(fact.relation_key, []).append(fact)
            rules = self.theory.rules
            for relation_key, facts in delta_by_relation.items():
                for rule_index, atom_index in self._body_index.get(
                    relation_key, ()
                ):
                    rule = rules[rule_index]
                    body = self._bodies[rule_index]
                    for assignment in homomorphisms(
                        body, self.database, forced=(atom_index, facts)
                    ):
                        consider(rule_index, rule, assignment)
        # deterministic firing order
        sorted_uvars = self._sorted_uvars
        triggers.sort(
            key=lambda item: (
                item[0],
                tuple(
                    str(item[2][variable])
                    for variable in sorted_uvars[item[0]]
                ),
            )
        )
        return triggers

    def _apply(
        self, rule_index: int, rule: Rule, assignment: dict[Variable, Term]
    ) -> set[Atom]:
        """Fire one trigger.  Returns the atoms actually added."""
        key = self._trigger_key(rule_index, rule, assignment)
        self.fired.add(key)
        if self.policy == RESTRICTED and extends_to_head(
            rule.head, rule.exist_vars, self.database, assignment
        ):
            return set()
        trigger_depth = max(
            (self._depth(term) for term in assignment.values()), default=0
        )
        if rule.exist_vars and self.budget.max_depth is not None:
            if trigger_depth + 1 > self.budget.max_depth:
                self.truncated = "max_depth"
                return set()
        mapping: dict[Term, Term] = dict(assignment)
        frontier_image = tuple(
            assignment[v] for v in self._sorted_frontiers[rule_index]
        )
        for variable in rule.exist_vars:
            if self.policy == SKOLEM:
                skolem_key = (rule_index, variable.name, frontier_image)
                null = self.skolem_cache.get(skolem_key)
                if null is None:
                    null = self._fresh_null()
                    self.skolem_cache[skolem_key] = null
                    self.depths[null] = trigger_depth + 1
                    self.nulls_created += 1
            else:
                null = self._fresh_null()
                self.depths[null] = trigger_depth + 1
                self.nulls_created += 1
            mapping[variable] = null
        added: set[Atom] = set()
        for atom in rule.head:
            grounded = atom.substitute(mapping)
            if self.database.add(grounded):
                added.add(grounded)
        self.steps += 1
        return added

    def _record_round(self, obs) -> None:
        """Report counters accumulated since the last report for the
        current round (supports split reporting across a budget cut)."""
        round_stats = RoundStats(
            round=self.rounds,
            triggers_enumerated=self._rb_triggers,
            triggers_fired=self.steps - self._rb_steps,
            atoms_added=len(self._round_added) - self._rb_atoms,
            nulls_created=self.nulls_created - self._rb_nulls,
        )
        self.stats.rounds.append(round_stats)
        self._rb_triggers = len(self._pending)
        self._rb_steps = self.steps
        self._rb_atoms = len(self._round_added)
        self._rb_nulls = self.nulls_created
        if obs is not None:
            obs.inc("chase.triggers_enumerated", round_stats.triggers_enumerated)
            obs.inc("triggers_fired", round_stats.triggers_fired)
            obs.inc("atoms_derived", round_stats.atoms_added)
            obs.inc("nulls_created", round_stats.nulls_created)
            obs.observe("chase.delta_size", round_stats.atoms_added)

    def run(self) -> ChaseResult:
        obs = _obs_current()
        run_span = (
            obs.span("chase", policy=self.policy, rules=len(self.theory))
            if obs is not None
            else nullcontext()
        )
        with run_span as span:
            while True:
                if not self._pending:
                    reason = self._limit_reason(tick=False)
                    if reason is not None:
                        self.truncated = reason
                        break
                    if (
                        self.budget.max_rounds is not None
                        and self.rounds >= self.budget.max_rounds
                    ):
                        self.truncated = "max_rounds"
                        break
                    triggers = self._enumerate_triggers(
                        self._delta if self._started else None
                    )
                    self._started = True
                    if not triggers:
                        break
                    self.rounds += 1
                    self._pending = deque(triggers)
                    self._round_added = set()
                    self._rb_triggers = len(triggers)
                    self._rb_steps = self.steps
                    self._rb_atoms = 0
                    self._rb_nulls = self.nulls_created
                cut_mid_round = False
                while self._pending:
                    reason = self._limit_reason(tick=True)
                    if reason is not None:
                        self.truncated = reason
                        cut_mid_round = True
                        break
                    rule_index, rule, assignment = self._pending.popleft()
                    self._round_added |= self._apply(rule_index, rule, assignment)
                self._record_round(obs)
                if cut_mid_round:
                    break
                self._delta = set(self._round_added)
                self._round_added = set()
            if obs is not None:
                obs.inc("chase.rounds", self.rounds)
                span.set(
                    atoms=len(self.database),
                    steps=self.steps,
                    rounds=self.rounds,
                    nulls=self.nulls_created,
                    truncated=self.truncated,
                )
        complete = self.truncated is None
        return ChaseResult(
            database=self.database,
            complete=complete,
            steps=self.steps,
            rounds=self.rounds,
            nulls_created=self.nulls_created,
            truncated_reason=self.truncated,
            null_depths={
                term: depth
                for term, depth in self.depths.items()
                if isinstance(term, Null)
            },
            stats=self.stats,
            snapshot=self.snapshot() if not complete else None,
        )


def chase(
    theory: Theory,
    database: Database,
    *,
    policy: str = OBLIVIOUS,
    budget: Optional[ChaseBudget] = None,
    null_prefix: str = "n",
    governor: Optional[ResourceGovernor] = None,
    _allow_negation: bool = False,
) -> ChaseResult:
    """Run the chase of ``database`` with ``theory``.

    ``policy=OBLIVIOUS`` fires every trigger exactly once (the paper's
    definition, Section 2); ``policy=RESTRICTED`` skips triggers whose head
    is already satisfied — smaller results, same certain answers;
    ``policy=SKOLEM`` (semi-oblivious) reuses one null per (rule,
    existential variable, frontier image) — the semantics under which
    joint acyclicity guarantees termination.

    ``governor`` adds deadline/cancellation control (defaults to the
    ambient governor, see :func:`repro.robustness.governor.governed`).
    """
    engine = _Engine(
        theory,
        database,
        policy,
        budget or ChaseBudget(),
        null_prefix,
        _allow_negation,
        governor=resolve_governor(governor),
    )
    return engine.run()


def extend_chase(
    theory: Theory,
    database: Database,
    new_facts,
    *,
    policy: str = RESTRICTED,
    budget: Optional[ChaseBudget] = None,
    null_prefix: str = "n",
    governor: Optional[ResourceGovernor] = None,
) -> ChaseResult:
    """Resume a *terminated* chase fixpoint after inserting base facts.

    ``database`` must be a completed chase result of ``theory`` (under
    the same policy); ``new_facts`` are the freshly inserted base facts.
    The engine seeds the semi-naive frontier with the genuinely new
    atoms and fires only triggers that involve at least one of them —
    the delta-restricted chase behind ``repro.incremental``.  Triggers
    over pre-existing atoms alone need no revisit: insertion is
    monotone, so a head satisfied in the old fixpoint stays satisfied
    (the engine runs ``RESTRICTED`` by default for exactly this
    reason).  Returns a :class:`ChaseResult` whose database is the new
    fixpoint; the input database is not mutated.

    Not sound after a *retraction*: removed atoms may have supported
    null-introducing derivations, so callers must fall back to a full
    recompute (``repro.incremental`` reports that fallback explicitly).
    """
    engine = _Engine(
        theory,
        database,
        policy,
        budget or ChaseBudget(),
        null_prefix,
        False,
        governor=resolve_governor(governor),
    )
    added: set[Atom] = set()
    for fact in new_facts:
        if engine.database.add(fact):
            added.add(fact)
    engine._started = True
    engine._delta = added
    return engine.run()


def resume_chase(
    snapshot: ChaseSnapshot,
    *,
    budget: Optional[ChaseBudget] = None,
    governor: Optional[ResourceGovernor] = None,
) -> ChaseResult:
    """Continue an interrupted chase from its :class:`ChaseSnapshot` under
    a fresh budget, without recomputation.

    Counters (``steps``, ``rounds``, ``nulls_created``) continue from the
    snapshot, so budgets on the resumed run are interpreted against the
    *cumulative* run — pass a larger (or unlimited) budget to make
    progress.  A run resumed after a cut produces a final result equal to
    the uninterrupted run (same atoms, same null names).
    """
    engine = _Engine.from_snapshot(
        snapshot, budget or ChaseBudget(), governor=resolve_governor(governor)
    )
    return engine.run()


def entails(
    theory: Theory,
    database: Database,
    atom: Atom,
    *,
    budget: Optional[ChaseBudget] = None,
    policy: str = RESTRICTED,
    governor: Optional[ResourceGovernor] = None,
) -> bool:
    """Check ``Σ, D |= α`` for a ground atom ``α`` via the chase.

    Uses the restricted chase by default (sound and complete for ground
    atomic entailment when the chase terminates).  Raises
    :class:`~repro.robustness.errors.BudgetExceeded` (a ``RuntimeError``)
    when the budget is exhausted before the atom is derived — in that case
    entailment is unknown.
    """
    if not atom.is_ground():
        raise InvalidRequestError(
            f"entailment is defined for ground atoms, got {atom}"
        )
    result = chase(
        theory, database, policy=policy, budget=budget, governor=governor
    )
    if atom in result.database:
        return True
    if not result.complete:
        reason = result.truncated_reason or "budget"
        raise exhausted_error(
            reason,
            f"chase truncated ({reason}); entailment undecided",
            Outcome(
                value=result,
                complete=False,
                exhausted=reason,
                snapshot=result.snapshot,
            ),
        )
    return False


def try_certain_answers(
    query: Query,
    database: Database,
    *,
    budget: Optional[ChaseBudget] = None,
    policy: str = RESTRICTED,
    governor: Optional[ResourceGovernor] = None,
) -> Outcome[set[tuple[Constant, ...]]]:
    """Graceful ``ans((Σ,Q), D)``: certain answers with degradation.

    The outcome's ``value`` holds the all-constant output tuples found in
    the (possibly partial) chase.  On exhaustion the answer set is *sound
    but possibly incomplete* — every tuple present is a certain answer,
    some certain answers may be missing — and ``snapshot`` resumes the
    underlying chase.
    """
    result = chase(query.theory, database, policy=policy, budget=budget,
                   governor=governor)
    answers = answers_in(result.database, query.output)
    return Outcome(
        value=answers,
        complete=result.complete,
        exhausted=None if result.complete else result.truncated_reason,
        sound=True,
        snapshot=result.snapshot,
    )


def certain_answers(
    query: Query,
    database: Database,
    *,
    budget: Optional[ChaseBudget] = None,
    policy: str = RESTRICTED,
    governor: Optional[ResourceGovernor] = None,
) -> set[tuple[Constant, ...]]:
    """``ans((Σ,Q), D)`` — constant tuples ``~c`` with ``Q(~c)`` in the chase.

    Per Section 2 only all-constant tuples are answers; tuples containing
    nulls are filtered out.  Raises a typed
    :class:`~repro.robustness.errors.BudgetExceeded` /
    :class:`~repro.robustness.errors.Cancelled` on exhaustion (both are
    ``RuntimeError`` subclasses; the partial outcome rides on the
    exception's ``outcome`` attribute).  Use :func:`try_certain_answers`
    for the non-raising variant.
    """
    outcome = try_certain_answers(
        query, database, budget=budget, policy=policy, governor=governor
    )
    if not outcome.complete:
        reason = outcome.exhausted or "budget"
        raise exhausted_error(
            reason, f"chase truncated ({reason}); answers unreliable", outcome
        )
    return outcome.value


def answers_in(database: Database, output: str) -> set[tuple[Constant, ...]]:
    """Extract all-constant ``output`` tuples from a database."""
    tuples: set[tuple[Constant, ...]] = set()
    for key in database.relations():
        if key[0] != output:
            continue
        for atom in database.atoms_for(key):
            if all(isinstance(term, Constant) for term in atom.args):
                tuples.add(tuple(atom.args))  # type: ignore[arg-type]
    return tuples
