"""Stratified chase semantics (Definition 23).

For a stratified theory ``Σ = Σ1 ∪ … ∪ Σn`` the semantics is an iterated
chase: ``S0 = D`` and ``Si`` is the chase of stratum ``Σi`` over
``S(i-1)``, where negated literals of the stratum are evaluated against the
already-final extensions of lower strata.

The paper's presentation materializes complements ``Ā``; because all our
rules are safe (negated variables are bound by positive literals) we
evaluate ``¬A(~t)`` directly as an absence check — equivalent, and it
avoids constructing the exponentially large complements.

Weakly guarded stratified theories can still have infinite chases (the
``Σsucc`` program of Theorem 5 does); callers bound each stratum with a
:class:`~repro.chase.runner.ChaseBudget`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.database import Database
from ..core.terms import Constant
from ..core.theory import Query, Theory
from ..datalog.stratification import Stratification, stratify
from .runner import ChaseBudget, ChaseResult, ChaseStats, chase

__all__ = ["stratified_chase", "stratified_answers"]


def stratified_chase(
    theory: Theory,
    database: Database,
    *,
    budget: Optional[ChaseBudget] = None,
    budgets: Optional[Sequence[ChaseBudget]] = None,
    stratification: Optional[Stratification] = None,
    policy: str = "oblivious",
) -> ChaseResult:
    """Compute ``chase(Σ, D)`` of Definition 23 stratum by stratum.

    ``budgets`` overrides ``budget`` per stratum when given.  The returned
    result aggregates steps/rounds across strata; it is ``complete`` only
    if every stratum reached a fixpoint."""
    if stratification is None:
        stratification = stratify(theory)
    if budgets is not None and len(budgets) != len(stratification):
        raise ValueError("one budget per stratum expected")

    current = database.copy()
    current.ensure_acdom_frozen()
    total_steps = 0
    total_rounds = 0
    total_nulls = 0
    complete = True
    reason: Optional[str] = None
    null_depths = {}
    stats = ChaseStats()
    for index, stratum in enumerate(stratification):
        stratum_budget = budgets[index] if budgets is not None else budget
        result = chase(
            stratum,
            current,
            policy=policy,
            budget=stratum_budget or ChaseBudget(),
            null_prefix=f"s{index}_n",
            _allow_negation=True,
        )
        current = result.database
        total_steps += result.steps
        total_rounds += result.rounds
        total_nulls += result.nulls_created
        null_depths.update(result.null_depths)
        stats.merge(result.stats)
        if not result.complete:
            complete = False
            reason = result.truncated_reason
    return ChaseResult(
        database=current,
        complete=complete,
        steps=total_steps,
        rounds=total_rounds,
        nulls_created=total_nulls,
        truncated_reason=reason,
        null_depths=null_depths,
        stats=stats,
    )


def stratified_answers(
    query: Query,
    database: Database,
    *,
    budget: Optional[ChaseBudget] = None,
    policy: str = "restricted",
    require_complete: bool = True,
) -> set[tuple[Constant, ...]]:
    """Certain answers under the stratified semantics."""
    result = stratified_chase(
        query.theory, database, budget=budget, policy=policy
    )
    if require_complete and not result.complete:
        raise RuntimeError(
            f"stratified chase truncated ({result.truncated_reason})"
        )
    from .runner import answers_in

    return answers_in(result.database, query.output)
