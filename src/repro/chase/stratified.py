"""Stratified chase semantics (Definition 23).

For a stratified theory ``Σ = Σ1 ∪ … ∪ Σn`` the semantics is an iterated
chase: ``S0 = D`` and ``Si`` is the chase of stratum ``Σi`` over
``S(i-1)``, where negated literals of the stratum are evaluated against the
already-final extensions of lower strata.

The paper's presentation materializes complements ``Ā``; because all our
rules are safe (negated variables are bound by positive literals) we
evaluate ``¬A(~t)`` directly as an absence check — equivalent, and it
avoids constructing the exponentially large complements.

Weakly guarded stratified theories can still have infinite chases (the
``Σsucc`` program of Theorem 5 does); callers bound each stratum with a
:class:`~repro.chase.runner.ChaseBudget` or a deadline-bearing
:class:`~repro.robustness.governor.ResourceGovernor`.  Count-budget
truncation is *deliberate* — the Theorem 5 constructions run a
depth-justified budget on a stratum whose chase is infinite and rely on
the higher strata still executing — so the iteration continues past it
(the aggregate result is marked incomplete).  Governor exhaustion
(deadline or cancellation) instead stops the iteration at once: the user
asked for the run to end, and every remaining stratum would trip the same
governor anyway.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.database import Database
from ..core.terms import Constant
from ..core.theory import Query, Theory
from ..datalog.stratification import Stratification, stratify
from ..robustness.errors import InvalidRequestError, exhausted_error
from ..robustness.governor import ResourceGovernor, resolve_governor
from ..robustness.outcome import Outcome
from .runner import ChaseBudget, ChaseResult, ChaseStats, chase

__all__ = ["stratified_chase", "stratified_answers"]


def stratified_chase(
    theory: Theory,
    database: Database,
    *,
    budget: Optional[ChaseBudget] = None,
    budgets: Optional[Sequence[ChaseBudget]] = None,
    stratification: Optional[Stratification] = None,
    policy: str = "oblivious",
    governor: Optional[ResourceGovernor] = None,
) -> ChaseResult:
    """Compute ``chase(Σ, D)`` of Definition 23 stratum by stratum.

    ``budgets`` overrides ``budget`` per stratum when given (one entry per
    stratum).  The returned result aggregates steps/rounds across strata;
    it is ``complete`` only if every stratum reached a fixpoint.  A
    deadline or cancellation stops the iteration immediately; a count
    budget only truncates its own stratum (see the module docstring)."""
    if stratification is None:
        stratification = stratify(theory)
    if budgets is not None and len(budgets) != len(stratification):
        raise InvalidRequestError(
            f"one budget per stratum expected: got {len(budgets)} budgets "
            f"for {len(stratification)} strata"
        )
    governor = resolve_governor(governor)

    current = database.copy()
    current.ensure_acdom_frozen()
    total_steps = 0
    total_rounds = 0
    total_nulls = 0
    complete = True
    reason: Optional[str] = None
    null_depths = {}
    stats = ChaseStats()
    for index, stratum in enumerate(stratification):
        stratum_budget = budgets[index] if budgets is not None else budget
        result = chase(
            stratum,
            current,
            policy=policy,
            budget=stratum_budget or ChaseBudget(),
            null_prefix=f"s{index}_n",
            governor=governor,
            _allow_negation=True,
        )
        current = result.database
        total_steps += result.steps
        total_rounds += result.rounds
        total_nulls += result.nulls_created
        null_depths.update(result.null_depths)
        stats.merge(result.stats)
        if not result.complete:
            complete = False
            reason = result.truncated_reason
            if reason in ("deadline", "cancelled"):
                break
    return ChaseResult(
        database=current,
        complete=complete,
        steps=total_steps,
        rounds=total_rounds,
        nulls_created=total_nulls,
        truncated_reason=reason,
        null_depths=null_depths,
        stats=stats,
    )


def stratified_answers(
    query: Query,
    database: Database,
    *,
    budget: Optional[ChaseBudget] = None,
    policy: str = "restricted",
    require_complete: bool = True,
    governor: Optional[ResourceGovernor] = None,
) -> set[tuple[Constant, ...]]:
    """Certain answers under the stratified semantics.

    With ``require_complete`` (the default) a truncated chase raises the
    typed exhaustion error; set it to ``False`` to accept the answers from
    the partial chase (sound only up to the last complete stratum)."""
    result = stratified_chase(
        query.theory, database, budget=budget, policy=policy, governor=governor
    )
    from .runner import answers_in

    answers = answers_in(result.database, query.output)
    if require_complete and not result.complete:
        reason = result.truncated_reason or "budget"
        raise exhausted_error(
            reason,
            f"stratified chase truncated ({reason})",
            Outcome(
                value=answers, complete=False, exhausted=reason, sound=False
            ),
        )
    return answers
