"""Static chase-termination analysis: the acyclicity ladder.

The paper's related work (Section 9, [23] = Krötzsch & Rudolph, IJCAI'11)
contrasts guardedness with *acyclicity*-based decidable fragments, whose
chases terminate on every database.  This module implements a ladder of
four criteria of strictly increasing strength (weak ⊆ joint ⊆ super-weak
⊆ model-faithful) so users — and the strategy advisor — can decide when
the plain chase is a complete decision procedure (no budgets needed):

* **weak acyclicity** (Fagin et al.): build the position dependency graph
  — a regular edge ``p → q`` whenever a universal variable can be copied
  from body position ``p`` to head position ``q``, and a *special* edge
  ``p ⇒ q′`` whenever a value in ``p`` can cause a fresh null in ``q′``.
  The theory is weakly acyclic iff no cycle passes through a special
  edge; then the restricted and skolem chases terminate polynomially.

* **joint acyclicity** (strictly more general): track, per existential
  variable ``z``, the set ``Mov(z)`` of positions its nulls can reach;
  draw ``z → z′`` when the nulls of ``z`` can feed every body occurrence
  of some frontier variable of the rule introducing ``z′``.  Acyclicity
  of this graph guarantees chase termination.

* **super-weak acyclicity** (Marnette, PODS'09): refine ``Mov`` from
  positions to *places* (individual argument occurrences) and only let a
  value move from a head occurrence to a body occurrence when the two
  atoms unify (existential variables acting as rigid Skolem markers, so
  distinct constants block the move).  Same graph, fewer edges, strictly
  more theories accepted.

* **model-faithful acyclicity** (MFA; Cuenca Grau et al., JAIR'13; the
  criterion behind the finite-chase languages of arXiv 1411.5220): run
  the skolem chase on the *critical instance* — one fact per relation
  over the rule constants plus a fresh ``*`` — and accept iff it reaches
  a fixpoint without ever nesting a Skolem function inside itself.  The
  run is bounded (``max_steps``); exceeding the budget is reported as
  ``exhausted``, never as termination, so the verdict stays sound.

Scope of every positive verdict: the **skolem** (semi-oblivious) and
**restricted** chases terminate on every database.  The oblivious chase
may still diverge (it invents a fresh null per trigger even for repeated
frontier images).  All analyses ignore negated literals (they only
suppress inferences).

:func:`estimate_chase_cost` turns a weakly acyclic position graph into a
polynomial cost estimate — per-position degrees, per-relation fact-count
exponents and per-existential null-generation exponents — consumed by
the EST001/EST002 lint passes and the strategy advisor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Optional, Sequence

from ..core.atoms import Atom, RelationKey
from ..core.terms import Constant, Variable
from ..core.theory import Theory
from ..guardedness.affected import Position, positions_of

__all__ = [
    "CRITERION_DATALOG",
    "CRITERION_WEAKLY_ACYCLIC",
    "CRITERION_JOINTLY_ACYCLIC",
    "CRITERION_SUPER_WEAKLY_ACYCLIC",
    "CRITERION_MFA",
    "CRITERION_UNKNOWN",
    "TERMINATION_CRITERIA",
    "MFA_TERMINATES",
    "MFA_CYCLIC",
    "MFA_EXHAUSTED",
    "PositionGraph",
    "position_dependency_graph",
    "find_special_cycle",
    "joint_dependency_edges",
    "find_joint_cycle",
    "super_weak_dependency_edges",
    "find_super_weak_cycle",
    "is_weakly_acyclic",
    "is_jointly_acyclic",
    "is_super_weakly_acyclic",
    "critical_instance",
    "MfaResult",
    "mfa_check",
    "is_model_faithful_acyclic",
    "term_token_to_json",
    "term_token_from_json",
    "position_ranks",
    "CostEstimate",
    "estimate_chase_cost",
    "chase_terminates",
]

# ----------------------------------------------------------------------
# criterion constants — the stable reason strings of ``chase_terminates``
# ----------------------------------------------------------------------
#: Every rule is Datalog; the chase adds no nulls under any policy.
CRITERION_DATALOG = "datalog"
CRITERION_WEAKLY_ACYCLIC = "weakly-acyclic"
CRITERION_JOINTLY_ACYCLIC = "jointly-acyclic"
CRITERION_SUPER_WEAKLY_ACYCLIC = "super-weakly-acyclic"
CRITERION_MFA = "model-faithful-acyclic"
#: Not proven — the problem is undecidable, so this is never "diverges".
CRITERION_UNKNOWN = "unknown"

#: The ladder in the order ``chase_terminates`` climbs it (each criterion
#: subsumes all earlier ones on existential theories).
TERMINATION_CRITERIA = (
    CRITERION_DATALOG,
    CRITERION_WEAKLY_ACYCLIC,
    CRITERION_JOINTLY_ACYCLIC,
    CRITERION_SUPER_WEAKLY_ACYCLIC,
    CRITERION_MFA,
)

#: Verdicts of the bounded MFA check.
MFA_TERMINATES = "terminates"
MFA_CYCLIC = "cyclic"
MFA_EXHAUSTED = "exhausted"

#: A node of the joint-acyclicity graph: (rule index, existential variable).
ExistentialNode = tuple[int, Variable]


@dataclass
class PositionGraph:
    """The weak-acyclicity position dependency graph.

    ``provenance`` records, per edge, the index of one rule that
    contributes it — metadata for diagnostics, irrelevant to the
    acyclicity checks themselves.
    """

    regular: set[tuple[Position, Position]] = field(default_factory=set)
    special: set[tuple[Position, Position]] = field(default_factory=set)
    provenance: dict[tuple[Position, Position], int] = field(default_factory=dict)

    def nodes(self) -> set[Position]:
        found: set[Position] = set()
        for edge_set in (self.regular, self.special):
            for source, target in edge_set:
                found.add(source)
                found.add(target)
        return found

    def has_cycle_through_special(self) -> bool:
        """Is there a cycle using at least one special edge?

        Standard check: for each special edge ``(u, v)``, test whether
        ``u`` is reachable from ``v`` over all edges."""
        successors: dict[Position, set[Position]] = {}
        for source, target in self.regular | self.special:
            successors.setdefault(source, set()).add(target)

        def reachable(start: Position, goal: Position) -> bool:
            stack, seen = [start], {start}
            while stack:
                node = stack.pop()
                if node == goal:
                    return True
                for nxt in successors.get(node, ()):
                    if nxt not in seen:
                        seen.add(nxt)
                        stack.append(nxt)
            return False

        return any(reachable(v, u) for u, v in self.special)


def position_dependency_graph(theory: Theory) -> PositionGraph:
    """Build the weak-acyclicity graph over argument positions."""
    graph = PositionGraph()
    for index, rule in enumerate(theory):
        body_atoms = rule.positive_body()
        evars = rule.evars()
        head_evar_positions: set[Position] = set()
        for evar in evars:
            head_evar_positions |= positions_of(rule.head, evar)
        for variable in rule.uvars():
            body_positions = positions_of(body_atoms, variable)
            if not body_positions:
                continue
            head_positions = positions_of(rule.head, variable)
            if not head_positions:
                continue
            for source in body_positions:
                for target in head_positions:
                    graph.regular.add((source, target))
                    graph.provenance.setdefault((source, target), index)
                for target in head_evar_positions:
                    graph.special.add((source, target))
                    graph.provenance.setdefault((source, target), index)
    return graph


def find_special_cycle(
    graph: PositionGraph,
) -> Optional[list[tuple[Position, Position, bool]]]:
    """A witness cycle through a special edge, or ``None`` if weakly acyclic.

    Returns a closed edge list ``[(source, target, special?), …]`` — the
    target of each edge is the source of the next, the last edge closes
    back to the first source, and at least one edge is special.  Every
    returned edge is a real edge of ``graph`` (``special?`` selects which
    edge set it came from), so the witness can be replayed."""
    successors: dict[Position, set[Position]] = {}
    for source, target in graph.regular | graph.special:
        successors.setdefault(source, set()).add(target)

    def path(start: Position, goal: Position) -> Optional[list[Position]]:
        """Shortest node path start → goal (possibly the empty path)."""
        if start == goal:
            return [start]
        parents: dict[Position, Position] = {}
        queue, seen = [start], {start}
        while queue:
            node = queue.pop(0)
            for nxt in sorted(successors.get(node, ())):
                if nxt in seen:
                    continue
                parents[nxt] = node
                if nxt == goal:
                    nodes = [goal]
                    while nodes[-1] != start:
                        nodes.append(parents[nodes[-1]])
                    return list(reversed(nodes))
                seen.add(nxt)
                queue.append(nxt)
        return None

    def label(source: Position, target: Position) -> bool:
        """Prefer the regular label when an edge is in both sets."""
        return (source, target) not in graph.regular

    for source, target in sorted(graph.special):
        nodes = path(target, source)
        if nodes is None:
            continue
        cycle = [(source, target, True)]
        for here, nxt in zip(nodes, nodes[1:]):
            cycle.append((here, nxt, label(here, nxt)))
        return cycle
    return None


def is_weakly_acyclic(theory: Theory) -> bool:
    """Weak acyclicity — the restricted/skolem chase terminates on every
    database (in polynomially many steps)."""
    return not position_dependency_graph(theory).has_cycle_through_special()


def _existential_move_sets(theory: Theory) -> dict[tuple[int, Variable], set[Position]]:
    """``Mov(z)`` per (rule index, existential variable): the positions the
    nulls invented for ``z`` may reach, as a least fixpoint."""
    moves: dict[tuple[int, Variable], set[Position]] = {}
    for index, rule in enumerate(theory):
        for evar in rule.exist_vars:
            moves[(index, evar)] = set(positions_of(rule.head, evar))
    changed = True
    while changed:
        changed = False
        for key, move_set in moves.items():
            for rule in theory:
                for variable in rule.uvars():
                    body_positions = positions_of(rule.positive_body(), variable)
                    if not body_positions or not body_positions <= move_set:
                        continue
                    head_positions = positions_of(rule.head, variable)
                    if not head_positions <= move_set:
                        move_set |= head_positions
                        changed = True
    return moves


def joint_dependency_edges(
    theory: Theory,
) -> dict[ExistentialNode, set[ExistentialNode]]:
    """The joint-acyclicity graph over (rule index, existential variable).

    Edge ``z → z′`` when the nulls of ``z`` can instantiate *every* body
    occurrence of some frontier variable of the rule introducing ``z′``."""
    moves = _existential_move_sets(theory)
    rules = list(theory)
    edges: dict[ExistentialNode, set[ExistentialNode]] = {key: set() for key in moves}
    for source_key, move_set in moves.items():
        for target_index, rule in enumerate(rules):
            if not rule.exist_vars:
                continue
            for variable in rule.frontier():
                body_positions = positions_of(rule.positive_body(), variable)
                if body_positions and body_positions <= move_set:
                    for evar in rule.exist_vars:
                        edges[source_key].add((target_index, evar))
                    break
    return edges


def _find_existential_cycle(
    edges: dict[ExistentialNode, set[ExistentialNode]],
) -> Optional[list[ExistentialNode]]:
    """Deterministic DFS cycle search over an existential-node graph."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {key: WHITE for key in edges}
    stack: list[ExistentialNode] = []

    def visit(key: ExistentialNode) -> Optional[list[ExistentialNode]]:
        color[key] = GRAY
        stack.append(key)
        for nxt in sorted(edges.get(key, ()), key=lambda n: (n[0], n[1].name)):
            if color[nxt] == GRAY:
                return stack[stack.index(nxt):]
            if color[nxt] == WHITE:
                found = visit(nxt)
                if found is not None:
                    return found
        color[key] = BLACK
        stack.pop()
        return None

    for key in sorted(edges, key=lambda n: (n[0], n[1].name)):
        if color[key] == WHITE:
            found = visit(key)
            if found is not None:
                return found
            stack.clear()
    return None


def find_joint_cycle(theory: Theory) -> Optional[list[ExistentialNode]]:
    """A witness cycle of the joint-acyclicity graph, or ``None``.

    Returns a node list ``[n0, …, nk]`` where every consecutive pair —
    and the wrap-around ``(nk, n0)`` — is an edge of
    :func:`joint_dependency_edges`."""
    return _find_existential_cycle(joint_dependency_edges(theory))


def is_jointly_acyclic(theory: Theory) -> bool:
    """Joint acyclicity ([23]) — subsumes weak acyclicity.

    Acyclicity of the :func:`joint_dependency_edges` graph guarantees
    chase termination."""
    return find_joint_cycle(theory) is None


# ----------------------------------------------------------------------
# super-weak acyclicity (Marnette, PODS'09)
# ----------------------------------------------------------------------
#: A *place*: one argument occurrence — (rule index, "body" | "head",
#: atom index within the positive body / head, argument index).
Place = tuple[int, str, int, int]


def _rigid(token: tuple) -> bool:
    """Constants and Skolem markers never unify with a different rigid."""
    return token[0] in ("c", "sk")


def _atoms_unify(head_atom: Atom, head_rule: int, head_evars: set[Variable],
                 body_atom: Atom) -> bool:
    """Can a fact produced by ``head_atom`` match ``body_atom``?

    Positional unification over arguments *and* annotation, with the
    head's existential variables treated as rigid Skolem markers and the
    two atoms' universal variables renamed apart (a produced fact is
    matched by a fresh trigger, so body variables never co-refer with
    head variables even within one rule)."""
    parent: dict[tuple, tuple] = {}

    def find(token: tuple) -> tuple:
        while parent.get(token, token) != token:
            parent[token] = parent.get(parent[token], parent[token])
            token = parent[token]
        return token

    def union(left: tuple, right: tuple) -> bool:
        left, right = find(left), find(right)
        if left == right:
            return True
        if _rigid(left) and _rigid(right):
            return False
        if _rigid(right):  # keep the rigid token as the class root
            left, right = right, left
        parent[right] = left
        return True

    for head_term, body_term in zip(head_atom.all_terms, body_atom.all_terms):
        if isinstance(head_term, Constant):
            head_token = ("c", head_term.name)
        elif head_term in head_evars:
            head_token = ("sk", head_rule, head_term.name)
        else:
            head_token = ("hv", head_term.name)
        if isinstance(body_term, Constant):
            body_token: tuple = ("c", body_term.name)
        else:
            body_token = ("bv", body_term.name)
        if not union(head_token, body_token):
            return False
    return True


def _super_weak_reach(theory: Theory) -> dict[ExistentialNode, set[Place]]:
    """Per (rule, existential variable): the set of places the invented
    nulls can reach — the place-level refinement of ``Mov``."""
    rules = list(theory)
    # place indices over the positive bodies and heads
    body_places_of: dict[tuple[int, Variable], set[Place]] = {}
    head_places_of: dict[tuple[int, Variable], set[Place]] = {}
    body_atom_at: dict[tuple[int, int], Atom] = {}
    head_atom_at: dict[tuple[int, int], Atom] = {}
    body_by_relpos: dict[tuple[RelationKey, int], list[Place]] = {}
    for index, rule in enumerate(rules):
        for atom_index, atom in enumerate(rule.positive_body()):
            body_atom_at[(index, atom_index)] = atom
            for arg_index, term in enumerate(atom.args):
                place = (index, "body", atom_index, arg_index)
                body_by_relpos.setdefault(
                    (atom.relation_key, arg_index), []
                ).append(place)
                if isinstance(term, Variable):
                    body_places_of.setdefault((index, term), set()).add(place)
        for atom_index, atom in enumerate(rule.head):
            head_atom_at[(index, atom_index)] = atom
            for arg_index, term in enumerate(atom.args):
                if isinstance(term, Variable):
                    head_places_of.setdefault((index, term), set()).add(
                        (index, "head", atom_index, arg_index)
                    )
    # precompute the trigger relation: head place ⤳ body place
    unifiable: dict[tuple[int, int, int, int], bool] = {}

    def moves_to(place: Place) -> Iterator[Place]:
        rule_index, _, atom_index, arg_index = place
        atom = head_atom_at[(rule_index, atom_index)]
        for target in body_by_relpos.get((atom.relation_key, arg_index), ()):
            pair = (rule_index, atom_index, target[0], target[2])
            verdict = unifiable.get(pair)
            if verdict is None:
                verdict = _atoms_unify(
                    atom,
                    rule_index,
                    set(rules[rule_index].exist_vars),
                    body_atom_at[(target[0], target[2])],
                )
                unifiable[pair] = verdict
            if verdict:
                yield target

    reach_of: dict[ExistentialNode, set[Place]] = {}
    for index, rule in enumerate(rules):
        for evar in rule.exist_vars:
            reach = set(head_places_of.get((index, evar), ()))
            changed = True
            while changed:
                changed = False
                for place in [p for p in reach if p[1] == "head"]:
                    for target in moves_to(place):
                        if target not in reach:
                            reach.add(target)
                            changed = True
                for (rule_index, variable), places in body_places_of.items():
                    if places and places <= reach:
                        gained = head_places_of.get((rule_index, variable), set())
                        if not gained <= reach:
                            reach |= gained
                            changed = True
            reach_of[(index, evar)] = reach
    return reach_of


def super_weak_dependency_edges(
    theory: Theory,
) -> dict[ExistentialNode, set[ExistentialNode]]:
    """The super-weak-acyclicity graph over (rule index, existential var).

    Same shape as :func:`joint_dependency_edges`, but the move relation
    is computed over *places* with unification pruning, so every edge
    here is also a joint edge (never the other way around)."""
    reach_of = _super_weak_reach(theory)
    rules = list(theory)
    body_places_of: dict[tuple[int, Variable], set[Place]] = {}
    for index, rule in enumerate(rules):
        for atom_index, atom in enumerate(rule.positive_body()):
            for arg_index, term in enumerate(atom.args):
                if isinstance(term, Variable):
                    body_places_of.setdefault((index, term), set()).add(
                        (index, "body", atom_index, arg_index)
                    )
    edges: dict[ExistentialNode, set[ExistentialNode]] = {
        key: set() for key in reach_of
    }
    for source_key, reach in reach_of.items():
        for target_index, rule in enumerate(rules):
            if not rule.exist_vars:
                continue
            for variable in rule.frontier():
                places = body_places_of.get((target_index, variable), set())
                if places and places <= reach:
                    for evar in rule.exist_vars:
                        edges[source_key].add((target_index, evar))
                    break
    return edges


def find_super_weak_cycle(theory: Theory) -> Optional[list[ExistentialNode]]:
    """A witness cycle of the super-weak-acyclicity graph, or ``None``.

    Same witness format as :func:`find_joint_cycle`, over
    :func:`super_weak_dependency_edges`."""
    return _find_existential_cycle(super_weak_dependency_edges(theory))


def is_super_weakly_acyclic(theory: Theory) -> bool:
    """Super-weak acyclicity (Marnette) — subsumes joint acyclicity."""
    return find_super_weak_cycle(theory) is None


# ----------------------------------------------------------------------
# model-faithful acyclicity (bounded critical-instance skolem chase)
# ----------------------------------------------------------------------
#: Ground terms of the critical-instance chase, as plain JSON-able
#: tuples so witnesses round-trip losslessly:
#: ``("c", name)`` — a constant; ``("f", rule, evar, (args…))`` — a
#: Skolem term for the existential ``evar`` of rule ``rule`` applied to
#: the frontier image ``args`` (sorted by variable name).
TermToken = tuple
#: A ground fact: ``(relation_key, (term tokens over args+annotation))``.
AtomToken = tuple[RelationKey, tuple]

#: The fresh constant of the critical instance.
_STAR: TermToken = ("c", "_star_")


def term_token_to_json(token: TermToken) -> dict[str, Any]:
    """The JSON form carried by TRM004 witnesses."""
    if token[0] == "c":
        return {"kind": "const", "name": token[1]}
    return {
        "kind": "skolem",
        "rule": token[1],
        "evar": token[2],
        "args": [term_token_to_json(arg) for arg in token[3]],
    }


def term_token_from_json(raw: dict[str, Any]) -> TermToken:
    if raw["kind"] == "const":
        return ("c", str(raw["name"]))
    return (
        "f",
        int(raw["rule"]),
        str(raw["evar"]),
        tuple(term_token_from_json(arg) for arg in raw["args"]),
    )


def _token_symbols(token: TermToken) -> frozenset[tuple[int, str]]:
    """All Skolem symbols ``(rule, evar)`` occurring in the term."""
    if token[0] == "c":
        return frozenset()
    symbols = {(token[1], token[2])}
    for arg in token[3]:
        symbols |= _token_symbols(arg)
    return frozenset(symbols)


def _token_depth(token: TermToken) -> int:
    if token[0] == "c":
        return 0
    return 1 + max((_token_depth(arg) for arg in token[3]), default=0)


def critical_instance(theory: Theory) -> set[AtomToken]:
    """The critical instance: every fact over the theory's signature and
    the rule constants plus the fresh ``*``.

    Any database maps homomorphically into it (constants of the rules to
    themselves, everything else to ``*``), so skolem-chase termination
    here implies termination on every database."""
    domain: list[TermToken] = [_STAR] + [
        ("c", constant.name)
        for constant in sorted(theory.constants(), key=lambda c: c.name)
    ]
    atoms: set[AtomToken] = set()
    for key in sorted(theory.relation_keys()):
        width = key[1] + key[2]
        stack: list[tuple[TermToken, ...]] = [()]
        for _ in range(width):
            stack = [prefix + (value,) for prefix in stack for value in domain]
        for args in stack:
            atoms.add((key, args))
    return atoms


def _match_body(
    atoms: Sequence[Atom],
    index: dict[RelationKey, list[tuple]],
    assignment: dict[Variable, TermToken],
    position: int,
) -> Iterator[dict[Variable, TermToken]]:
    """Backtracking join of a positive body against the token database."""
    if position == len(atoms):
        yield dict(assignment)
        return
    atom = atoms[position]
    for fact_terms in index.get(atom.relation_key, ()):
        bound: list[Variable] = []
        ok = True
        for pattern, value in zip(atom.all_terms, fact_terms):
            if isinstance(pattern, Constant):
                if value != ("c", pattern.name):
                    ok = False
                    break
            else:
                seen = assignment.get(pattern)
                if seen is None:
                    assignment[pattern] = value
                    bound.append(pattern)
                elif seen != value:
                    ok = False
                    break
        if ok:
            yield from _match_body(atoms, index, assignment, position + 1)
        for variable in bound:
            del assignment[variable]


def _ground_atom(atom: Atom, assignment: dict[Variable, TermToken]) -> AtomToken:
    terms = tuple(
        ("c", term.name) if isinstance(term, Constant) else assignment[term]
        for term in atom.all_terms
    )
    return (atom.relation_key, terms)


@dataclass(frozen=True)
class MfaResult:
    """Outcome of the bounded critical-instance skolem chase.

    ``verdict`` is :data:`MFA_TERMINATES` (fixpoint, no cyclic term — the
    theory is model-faithful acyclic), :data:`MFA_CYCLIC` (a Skolem
    function nested inside itself — MFA refuted), or
    :data:`MFA_EXHAUSTED` (budget ran out — *no* verdict either way).
    ``trace`` replays every firing: each step names the rule, the full
    body assignment, and the added facts, so the run can be re-checked
    mechanically without re-searching for matches.  ``cyclic`` (only for
    :data:`MFA_CYCLIC`) pins the offending Skolem term."""

    verdict: str
    steps: int
    atoms: int
    nulls: int
    depth: int
    max_steps: int
    trace: tuple[dict, ...] = ()
    cyclic: Optional[dict] = None

    def to_dict(self, *, include_trace: bool = False) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "verdict": self.verdict,
            "steps": self.steps,
            "atoms": self.atoms,
            "nulls": self.nulls,
            "depth": self.depth,
            "max_steps": self.max_steps,
        }
        if include_trace:
            payload["trace"] = list(self.trace)
            payload["cyclic"] = self.cyclic
        return payload


def mfa_check(
    theory: Theory, *, max_steps: int = 2048, max_atoms: int = 50_000
) -> MfaResult:
    """Bounded MFA: skolem-chase the critical instance, watching for a
    Skolem function applied (transitively) to its own output.

    Sound in the never-overclaims direction: :data:`MFA_TERMINATES` is
    only returned on a genuine fixpoint, so it certifies skolem- and
    restricted-chase termination on **every** database; hitting
    ``max_steps``/``max_atoms`` yields :data:`MFA_EXHAUSTED`."""
    database = critical_instance(theory)
    if len(database) > max_atoms:
        return MfaResult(MFA_EXHAUSTED, 0, len(database), 0, 0, max_steps)
    index: dict[RelationKey, list[tuple]] = {}
    for key, terms in sorted(database):
        index.setdefault(key, []).append(terms)
    fired: set[tuple[int, tuple]] = set()
    trace: list[dict] = []
    steps = nulls = depth = 0
    rules = list(theory)
    changed = True
    while changed:
        changed = False
        for rule_index, rule in enumerate(rules):
            frontier = sorted(rule.frontier(), key=lambda v: v.name)
            body = rule.positive_body()
            # Snapshot the matches: firing mutates the index, and the
            # skolem ``fired`` set already dedupes re-discoveries.
            for assignment in list(_match_body(body, index, {}, 0)):
                image = tuple(assignment[variable] for variable in frontier)
                key = (rule_index, image)
                if key in fired:
                    continue
                fired.add(key)
                cyclic: Optional[tuple[int, str, TermToken]] = None
                for evar in rule.exist_vars:
                    token: TermToken = ("f", rule_index, evar.name, image)
                    assignment[evar] = token
                    nulls += 1
                    depth = max(depth, _token_depth(token))
                    if cyclic is None:
                        nested = frozenset().union(
                            *(_token_symbols(arg) for arg in image)
                        ) if image else frozenset()
                        if (rule_index, evar.name) in nested:
                            cyclic = (rule_index, evar.name, token)
                added = [_ground_atom(atom, assignment) for atom in rule.head]
                fresh = [fact for fact in added if fact not in database]
                if not fresh and cyclic is None:
                    continue
                steps += 1
                trace.append(
                    {
                        "rule": rule_index,
                        "assignment": {
                            variable.name: term_token_to_json(value)
                            for variable, value in sorted(
                                assignment.items(), key=lambda kv: kv[0].name
                            )
                        },
                        "added": [
                            {
                                "relation": fact[0][0],
                                "terms": [
                                    term_token_to_json(term) for term in fact[1]
                                ],
                            }
                            for fact in added
                        ],
                    }
                )
                for fact in fresh:
                    database.add(fact)
                    index.setdefault(fact[0], []).append(fact[1])
                changed = True
                if cyclic is not None:
                    return MfaResult(
                        MFA_CYCLIC,
                        steps,
                        len(database),
                        nulls,
                        depth,
                        max_steps,
                        trace=tuple(trace),
                        cyclic={
                            "rule": cyclic[0],
                            "evar": cyclic[1],
                            "term": term_token_to_json(cyclic[2]),
                        },
                    )
                if steps >= max_steps or len(database) > max_atoms:
                    return MfaResult(
                        MFA_EXHAUSTED, steps, len(database), nulls, depth, max_steps
                    )
    return MfaResult(
        MFA_TERMINATES, steps, len(database), nulls, depth, max_steps,
        trace=tuple(trace),
    )


def is_model_faithful_acyclic(theory: Theory, *, max_steps: int = 2048) -> bool:
    """MFA within budget — subsumes super-weak acyclicity (a larger
    budget can only turn ``False`` into ``True``, never the reverse)."""
    return mfa_check(theory, max_steps=max_steps).verdict == MFA_TERMINATES


# ----------------------------------------------------------------------
# cost estimation over the (weakly acyclic) position graph
# ----------------------------------------------------------------------
def position_ranks(graph: PositionGraph) -> Optional[dict[Position, int]]:
    """``rank(p)``: the maximum number of special edges on any path into
    ``p`` — finite exactly when the theory is weakly acyclic (returns
    ``None`` otherwise).  Fagin et al.'s bound: nulls created at a
    rank-``k`` position nest at most ``k`` deep."""
    nodes = graph.nodes()
    ranks = {position: 0 for position in nodes}
    bound = len(graph.special)
    for _ in range(len(nodes) * (bound + 1) + 1):
        changed = False
        for source, target in graph.regular:
            if ranks[target] < ranks[source]:
                ranks[target] = ranks[source]
                changed = True
        for source, target in graph.special:
            if ranks[target] < ranks[source] + 1:
                ranks[target] = ranks[source] + 1
                changed = True
        if not changed:
            return ranks
        if ranks and max(ranks.values()) > bound:
            return None
    return None


@dataclass(frozen=True)
class CostEstimate:
    """Polynomial bounds on the chase of a weakly acyclic theory, as
    degrees in ``n`` (the active-domain size of the input database).

    ``position_degrees[p]`` bounds the distinct values at position ``p``
    by ``O(n^d)``; ``relation_degrees[R]`` (the sum over ``R``'s
    positions) bounds the facts over ``R``; ``creation_degrees[(i, y)]``
    bounds the nulls invented for existential ``y`` of rule ``i``;
    ``depths`` bounds their nesting.  Annotation payload is treated as
    domain-bounded (degree 1), consistent with the rest of the analyses
    tracking argument positions only."""

    position_degrees: dict[Position, int]
    relation_degrees: dict[str, int]
    creation_degrees: dict[tuple[int, str], int]
    depths: dict[tuple[int, str], int]
    max_rank: int
    total_degree: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "relations": [
                {"relation": relation, "degree": degree}
                for relation, degree in sorted(self.relation_degrees.items())
            ],
            "existentials": [
                {
                    "rule": rule_index,
                    "variable": name,
                    "degree": self.creation_degrees[(rule_index, name)],
                    "depth": self.depths[(rule_index, name)],
                }
                for rule_index, name in sorted(self.creation_degrees)
            ],
            "max_rank": self.max_rank,
            "total_degree": self.total_degree,
        }


def estimate_chase_cost(theory: Theory) -> Optional[CostEstimate]:
    """Degree bounds from the position graph and rule fan-out, or
    ``None`` when the theory is not weakly acyclic (no polynomial bound
    exists to report).

    The fixpoint: every position starts at degree 1 (the database may
    fill it with any of the ``n`` domain values); regular edges copy
    degrees forward (max); an existential ``y`` of rule ``i`` creates at
    most ``n^c`` nulls where ``c`` sums, over the rule's frontier
    variables, the cheapest body position each must match — and those
    nulls land on ``y``'s head positions.  Weak acyclicity makes this
    monotone iteration converge."""
    graph = position_dependency_graph(theory)
    ranks = position_ranks(graph)
    if ranks is None:
        return None
    from ..core.theory import ACDOM

    degrees: dict[Position, int] = {}
    for key in theory.relation_keys():
        for arg_index in range(key[1]):
            degrees[(key[0], arg_index)] = 1
    for position in graph.nodes():
        degrees.setdefault(position, 1)
    rules = list(theory)
    creation: dict[tuple[int, str], int] = {}
    depths: dict[tuple[int, str], int] = {}
    for _ in range(10_000):
        changed = False
        for source, target in graph.regular:
            if degrees[target] < degrees[source]:
                degrees[target] = degrees[source]
                changed = True
        for rule_index, rule in enumerate(rules):
            if not rule.exist_vars:
                continue
            cost = 0
            for variable in sorted(rule.frontier(), key=lambda v: v.name):
                body_positions = positions_of(rule.positive_body(), variable)
                if body_positions:
                    cost += min(degrees[position] for position in body_positions)
                else:
                    cost += 1
            for evar in rule.exist_vars:
                creation[(rule_index, evar.name)] = cost
                head_positions = positions_of(rule.head, evar)
                depths[(rule_index, evar.name)] = max(
                    (ranks.get(position, 0) for position in head_positions),
                    default=0,
                )
                for position in head_positions:
                    if degrees[position] < cost:
                        degrees[position] = cost
                        changed = True
        if not changed:
            break
    else:  # pragma: no cover - unreachable when weakly acyclic
        return None
    relation_degrees: dict[str, int] = {}
    for key in theory.relation_keys():
        if key[0] == ACDOM:
            continue
        relation_degrees[key[0]] = sum(
            degrees[(key[0], arg_index)] for arg_index in range(key[1])
        ) if key[1] else 0
    return CostEstimate(
        position_degrees=degrees,
        relation_degrees=relation_degrees,
        creation_degrees=creation,
        depths=depths,
        max_rank=max(ranks.values(), default=0),
        total_degree=max(relation_degrees.values(), default=0),
    )


# ----------------------------------------------------------------------
# the ladder entry point
# ----------------------------------------------------------------------
def chase_terminates(
    theory: Theory, *, mfa_max_steps: Optional[int] = None
) -> tuple[bool, str]:
    """Best-effort static termination verdict, climbing the ladder.

    Returns ``(True, criterion)`` naming the *first* criterion that
    proves termination (one of :data:`TERMINATION_CRITERIA`) and
    ``(False, CRITERION_UNKNOWN)`` otherwise — the problem is
    undecidable in general, so False means *not proven*, not
    *non-terminating*.  The MFA rung runs only when ``mfa_max_steps`` is
    given (it chases the critical instance, which is real work compared
    to the graph criteria).

    Scope of the verdicts: ``datalog`` covers every chase policy; all
    acyclicity criteria guarantee termination of the *skolem*
    (semi-oblivious) and restricted chases — the oblivious chase may
    still diverge (it invents a fresh null per trigger even for repeated
    frontier images, e.g. on ``P2(x,y) → ∃z P1(z)`` fed back by
    ``P1(x) → P2(x,x)``)."""
    if theory.is_datalog():
        return True, CRITERION_DATALOG
    if is_weakly_acyclic(theory):
        return True, CRITERION_WEAKLY_ACYCLIC
    if is_jointly_acyclic(theory):
        return True, CRITERION_JOINTLY_ACYCLIC
    if is_super_weakly_acyclic(theory):
        return True, CRITERION_SUPER_WEAKLY_ACYCLIC
    if mfa_max_steps is not None and is_model_faithful_acyclic(
        theory, max_steps=mfa_max_steps
    ):
        return True, CRITERION_MFA
    return False, CRITERION_UNKNOWN
