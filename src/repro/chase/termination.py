"""Static chase-termination analysis: weak and joint acyclicity.

The paper's related work (Section 9, [23] = Krötzsch & Rudolph, IJCAI'11)
contrasts guardedness with *acyclicity*-based decidable fragments, whose
chases terminate on every database.  This module implements the two
classic members so users can decide when the plain chase is a complete
decision procedure (no budgets needed):

* **weak acyclicity** (Fagin et al.): build the position dependency graph
  — a regular edge ``p → q`` whenever a universal variable can be copied
  from body position ``p`` to head position ``q``, and a *special* edge
  ``p ⇒ q′`` whenever a value in ``p`` can cause a fresh null in ``q′``.
  The theory is weakly acyclic iff no cycle passes through a special
  edge; then the restricted and skolem chases terminate polynomially.

* **joint acyclicity** (strictly more general): track, per existential
  variable ``z``, the set ``Mov(z)`` of positions its nulls can reach;
  draw ``z → z′`` when the nulls of ``z`` can feed every body occurrence
  of some frontier variable of the rule introducing ``z′``.  Acyclicity
  of this graph guarantees chase termination.

Both analyses ignore negated literals (they only suppress inferences).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.terms import Variable
from ..core.theory import Theory
from ..guardedness.affected import Position, positions_of

__all__ = [
    "PositionGraph",
    "position_dependency_graph",
    "find_special_cycle",
    "joint_dependency_edges",
    "find_joint_cycle",
    "is_weakly_acyclic",
    "is_jointly_acyclic",
    "chase_terminates",
]

#: A node of the joint-acyclicity graph: (rule index, existential variable).
ExistentialNode = tuple[int, Variable]


@dataclass
class PositionGraph:
    """The weak-acyclicity position dependency graph.

    ``provenance`` records, per edge, the index of one rule that
    contributes it — metadata for diagnostics, irrelevant to the
    acyclicity checks themselves.
    """

    regular: set[tuple[Position, Position]] = field(default_factory=set)
    special: set[tuple[Position, Position]] = field(default_factory=set)
    provenance: dict[tuple[Position, Position], int] = field(default_factory=dict)

    def nodes(self) -> set[Position]:
        found: set[Position] = set()
        for edge_set in (self.regular, self.special):
            for source, target in edge_set:
                found.add(source)
                found.add(target)
        return found

    def has_cycle_through_special(self) -> bool:
        """Is there a cycle using at least one special edge?

        Standard check: for each special edge ``(u, v)``, test whether
        ``u`` is reachable from ``v`` over all edges."""
        successors: dict[Position, set[Position]] = {}
        for source, target in self.regular | self.special:
            successors.setdefault(source, set()).add(target)

        def reachable(start: Position, goal: Position) -> bool:
            stack, seen = [start], {start}
            while stack:
                node = stack.pop()
                if node == goal:
                    return True
                for nxt in successors.get(node, ()):
                    if nxt not in seen:
                        seen.add(nxt)
                        stack.append(nxt)
            return False

        return any(reachable(v, u) for u, v in self.special)


def position_dependency_graph(theory: Theory) -> PositionGraph:
    """Build the weak-acyclicity graph over argument positions."""
    graph = PositionGraph()
    for index, rule in enumerate(theory):
        body_atoms = rule.positive_body()
        evars = rule.evars()
        head_evar_positions: set[Position] = set()
        for evar in evars:
            head_evar_positions |= positions_of(rule.head, evar)
        for variable in rule.uvars():
            body_positions = positions_of(body_atoms, variable)
            if not body_positions:
                continue
            head_positions = positions_of(rule.head, variable)
            if not head_positions:
                continue
            for source in body_positions:
                for target in head_positions:
                    graph.regular.add((source, target))
                    graph.provenance.setdefault((source, target), index)
                for target in head_evar_positions:
                    graph.special.add((source, target))
                    graph.provenance.setdefault((source, target), index)
    return graph


def find_special_cycle(
    graph: PositionGraph,
) -> Optional[list[tuple[Position, Position, bool]]]:
    """A witness cycle through a special edge, or ``None`` if weakly acyclic.

    Returns a closed edge list ``[(source, target, special?), …]`` — the
    target of each edge is the source of the next, the last edge closes
    back to the first source, and at least one edge is special.  Every
    returned edge is a real edge of ``graph`` (``special?`` selects which
    edge set it came from), so the witness can be replayed."""
    successors: dict[Position, set[Position]] = {}
    for source, target in graph.regular | graph.special:
        successors.setdefault(source, set()).add(target)

    def path(start: Position, goal: Position) -> Optional[list[Position]]:
        """Shortest node path start → goal (possibly the empty path)."""
        if start == goal:
            return [start]
        parents: dict[Position, Position] = {}
        queue, seen = [start], {start}
        while queue:
            node = queue.pop(0)
            for nxt in sorted(successors.get(node, ())):
                if nxt in seen:
                    continue
                parents[nxt] = node
                if nxt == goal:
                    nodes = [goal]
                    while nodes[-1] != start:
                        nodes.append(parents[nodes[-1]])
                    return list(reversed(nodes))
                seen.add(nxt)
                queue.append(nxt)
        return None

    def label(source: Position, target: Position) -> bool:
        """Prefer the regular label when an edge is in both sets."""
        return (source, target) not in graph.regular

    for source, target in sorted(graph.special):
        nodes = path(target, source)
        if nodes is None:
            continue
        cycle = [(source, target, True)]
        for here, nxt in zip(nodes, nodes[1:]):
            cycle.append((here, nxt, label(here, nxt)))
        return cycle
    return None


def is_weakly_acyclic(theory: Theory) -> bool:
    """Weak acyclicity — the restricted/skolem chase terminates on every
    database (in polynomially many steps)."""
    return not position_dependency_graph(theory).has_cycle_through_special()


def _existential_move_sets(theory: Theory) -> dict[tuple[int, Variable], set[Position]]:
    """``Mov(z)`` per (rule index, existential variable): the positions the
    nulls invented for ``z`` may reach, as a least fixpoint."""
    moves: dict[tuple[int, Variable], set[Position]] = {}
    for index, rule in enumerate(theory):
        for evar in rule.exist_vars:
            moves[(index, evar)] = set(positions_of(rule.head, evar))
    changed = True
    while changed:
        changed = False
        for key, move_set in moves.items():
            for rule in theory:
                for variable in rule.uvars():
                    body_positions = positions_of(rule.positive_body(), variable)
                    if not body_positions or not body_positions <= move_set:
                        continue
                    head_positions = positions_of(rule.head, variable)
                    if not head_positions <= move_set:
                        move_set |= head_positions
                        changed = True
    return moves


def joint_dependency_edges(
    theory: Theory,
) -> dict[ExistentialNode, set[ExistentialNode]]:
    """The joint-acyclicity graph over (rule index, existential variable).

    Edge ``z → z′`` when the nulls of ``z`` can instantiate *every* body
    occurrence of some frontier variable of the rule introducing ``z′``."""
    moves = _existential_move_sets(theory)
    rules = list(theory)
    edges: dict[ExistentialNode, set[ExistentialNode]] = {key: set() for key in moves}
    for source_key, move_set in moves.items():
        for target_index, rule in enumerate(rules):
            if not rule.exist_vars:
                continue
            for variable in rule.frontier():
                body_positions = positions_of(rule.positive_body(), variable)
                if body_positions and body_positions <= move_set:
                    for evar in rule.exist_vars:
                        edges[source_key].add((target_index, evar))
                    break
    return edges


def find_joint_cycle(theory: Theory) -> Optional[list[ExistentialNode]]:
    """A witness cycle of the joint-acyclicity graph, or ``None``.

    Returns a node list ``[n0, …, nk]`` where every consecutive pair —
    and the wrap-around ``(nk, n0)`` — is an edge of
    :func:`joint_dependency_edges`."""
    edges = joint_dependency_edges(theory)
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {key: WHITE for key in edges}
    stack: list[ExistentialNode] = []

    def visit(key: ExistentialNode) -> Optional[list[ExistentialNode]]:
        color[key] = GRAY
        stack.append(key)
        for nxt in sorted(edges.get(key, ()), key=lambda n: (n[0], n[1].name)):
            if color[nxt] == GRAY:
                return stack[stack.index(nxt):]
            if color[nxt] == WHITE:
                found = visit(nxt)
                if found is not None:
                    return found
        color[key] = BLACK
        stack.pop()
        return None

    for key in sorted(edges, key=lambda n: (n[0], n[1].name)):
        if color[key] == WHITE:
            found = visit(key)
            if found is not None:
                return found
            stack.clear()
    return None


def is_jointly_acyclic(theory: Theory) -> bool:
    """Joint acyclicity ([23]) — subsumes weak acyclicity.

    Acyclicity of the :func:`joint_dependency_edges` graph guarantees
    chase termination."""
    return find_joint_cycle(theory) is None


def chase_terminates(theory: Theory) -> tuple[bool, str]:
    """Best-effort static termination verdict.

    Returns ``(True, reason)`` when a sufficient criterion fires and
    ``(False, "unknown")`` otherwise — the problem is undecidable in
    general, so False means *not proven*, not *non-terminating*.

    Scope of the verdicts: ``datalog`` covers every chase policy;
    ``weakly-acyclic`` and ``jointly-acyclic`` guarantee termination of
    the *skolem* (semi-oblivious) and restricted chases — the oblivious
    chase may still diverge (it invents a fresh null per trigger even for
    repeated frontier images, e.g. on ``P2(x,y) → ∃z P1(z)`` fed back by
    ``P1(x) → P2(x,x)``)."""
    if theory.is_datalog():
        return True, "datalog"
    if is_weakly_acyclic(theory):
        return True, "weakly-acyclic"
    if is_jointly_acyclic(theory):
        return True, "jointly-acyclic"
    return False, "unknown"
