"""Cores of databases with nulls.

The *core* of a database is its smallest retract: a homomorphically
equivalent sub-database with no proper endomorphism into itself.  Cores
are the canonical representatives of homomorphic-equivalence classes —
two chase results represent the same certain knowledge iff their cores
are isomorphic.  The paper compares chases "up to homomorphic
equivalence" throughout; cores make those comparisons canonical and keep
oblivious-chase results small.

Computing cores is NP-hard in general; the implementation below is the
standard greedy folding loop (try to map each null onto another term,
retract, repeat), exact and fine at test scale.
"""

from __future__ import annotations

from typing import Optional

from ..core.database import Database
from ..core.homomorphism import first_homomorphism
from ..core.terms import Null, Term, Variable
from ..robustness.errors import ConvergenceError

__all__ = ["core_of", "is_core", "cores_isomorphic"]


def _fold(database: Database, victim: Null) -> Optional[dict[Term, Term]]:
    """A *shrinking* endomorphism eliminating ``victim``: the victim maps
    to a different term while every other null is fixed.  Fixing the
    others guarantees the image is a proper sub-database, so the greedy
    loop strictly shrinks."""
    nulls = sorted(database.nulls(), key=lambda n: n.name)
    variables = {null: Variable(f"__core_{i}") for i, null in enumerate(nulls)}
    pattern = [atom.substitute(dict(variables)) for atom in database]

    fixed: dict[Variable, Term] = {
        variables[null]: null for null in nulls if null != victim
    }
    victim_var = variables[victim]
    candidates = sorted(
        (term for term in database.terms() if term != victim),
        key=str,
    )
    for candidate in candidates:
        partial = dict(fixed)
        partial[victim_var] = candidate
        assignment = first_homomorphism(pattern, database, partial=partial)
        if assignment is not None:
            return {
                null: assignment[var]
                for null, var in variables.items()
                if var in assignment
            }
    return None


def _shrinking_endomorphism(database: Database) -> Optional[dict[Term, Term]]:
    """Fallback for folds that must move several nulls at once: any
    endomorphism whose image misses some null."""
    from ..core.homomorphism import homomorphisms

    nulls = sorted(database.nulls(), key=lambda n: n.name)
    variables = {null: Variable(f"__core_{i}") for i, null in enumerate(nulls)}
    pattern = [atom.substitute(dict(variables)) for atom in database]
    null_set = set(nulls)
    for assignment in homomorphisms(pattern, database):
        image = {assignment[variables[null]] for null in nulls}
        if not null_set <= image:
            return {null: assignment[variables[null]] for null in nulls}
    return None


def core_of(database: Database, max_iterations: int = 10_000) -> Database:
    """The core of a database (greedy folding + shrinking fallback; exact).

    ``max_iterations`` bounds the number of folds; each fold eliminates at
    least one null, so ``database.nulls()`` folds always suffice — the
    bound only trips on genuinely pathological inputs (or when set low on
    purpose), raising :class:`~repro.robustness.errors.ConvergenceError`
    (a ``RuntimeError``)."""
    current = database.copy()
    for _ in range(max_iterations):
        mapping = None
        for victim in sorted(current.nulls(), key=lambda n: n.name):
            mapping = _fold(current, victim)
            if mapping is not None:
                break
        if mapping is None:
            mapping = _shrinking_endomorphism(current)
        if mapping is None:
            return current
        current = Database(
            (atom.substitute(dict(mapping)) for atom in current),
            freeze_acdom=False,
        )
    raise ConvergenceError(
        f"core computation did not converge within {max_iterations} folds "
        f"({len(current.nulls())} nulls remaining)"
    )


def is_core(database: Database) -> bool:
    """No shrinking endomorphism exists."""
    for victim in sorted(database.nulls(), key=lambda n: n.name):
        if _fold(database, victim) is not None:
            return False
    return _shrinking_endomorphism(database) is None


def cores_isomorphic(left: Database, right: Database) -> bool:
    """Homomorphic equivalence via cores: equivalent databases have
    isomorphic cores; for cores, mutual homomorphisms imply isomorphism."""
    from ..core.homomorphism import database_homomorphism

    left_core = core_of(left)
    right_core = core_of(right)
    if len(left_core) != len(right_core):
        return False
    return (
        database_homomorphism(left_core, right_core) is not None
        and database_homomorphism(right_core, left_core) is not None
    )
