"""Partial grounding ``pg(Σ, D)`` (Section 7, step 2).

``pg(Σ, D)`` instantiates, in every rule, the variables occurring in
non-affected positions (the *safe* variables) with constants of the
database, in all possible ways.  For a weakly guarded theory the result is
guarded: after grounding, the remaining variables of each rule are unsafe
and therefore covered by the weak guard.  The grounding is exponential in
the number of safe variables per rule but has linearly many variables per
rule — exactly the shape the Section 7 pipeline needs before applying the
guarded-to-Datalog saturation.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Optional

from ..core.database import Database
from ..core.rules import Rule
from ..core.terms import Constant
from ..core.theory import Theory
from ..guardedness.affected import (
    Position,
    affected_positions,
    unsafe_variables,
)

__all__ = ["partial_grounding", "ground_program"]


def partial_grounding(
    theory: Theory,
    database: Database,
    *,
    ap: Optional[set[Position]] = None,
    extra_constants: Iterable[Constant] = (),
) -> Theory:
    """Compute ``pg(Σ, D)``: substitute safe variables by constants of
    ``D`` (and the theory's own constants) in all possible ways."""
    if ap is None:
        ap = affected_positions(theory)
    constants = sorted(
        set(database.constants()) | set(theory.constants()) | set(extra_constants)
    )
    grounded: list[Rule] = []
    for rule in theory:
        unsafe = unsafe_variables(rule, theory, ap)
        safe = sorted(
            (
                variable
                for variable in rule.uvars()
                if variable not in unsafe
            ),
            key=lambda v: v.name,
        )
        if not safe:
            grounded.append(rule)
            continue
        for values in itertools.product(constants, repeat=len(safe)):
            mapping = dict(zip(safe, values))
            grounded.append(rule.substitute(mapping))
    return Theory(grounded)


def ground_program(theory: Theory, database: Database) -> Theory:
    """Fully ground a Datalog program over the constants of ``D`` (Section
    7, step 4).  Variables range over the active domain plus theory
    constants; rules whose bodies cannot possibly match are kept anyway
    (they are harmless for evaluation)."""
    constants = sorted(set(database.constants()) | set(theory.constants()))
    grounded: list[Rule] = []
    for rule in theory:
        if not rule.is_datalog():
            raise ValueError("ground_program expects a Datalog program")
        variables = sorted(rule.variables(), key=lambda v: v.name)
        if not variables:
            grounded.append(rule)
            continue
        for values in itertools.product(constants, repeat=len(variables)):
            mapping = dict(zip(variables, values))
            grounded.append(rule.substitute(mapping))
    return Theory(grounded)
