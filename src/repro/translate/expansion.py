"""Expansion and rewriting: frontier-guarded → nearly guarded (Theorem 1).

``ex(Σ)`` (Definition 12) closes a normal frontier-guarded theory under all
rc- and rnc-rewritings of its non-guarded Datalog rules.  Each rewriting
replaces work on a non-guarded rule by a guarded rule plus a structurally
smaller frontier-guarded rule (fewer variables outside a frontier guard),
so the closure terminates; it is worst-case exponential (Section 5).

``rew(Σ)`` (Definition 13) then adds ``ACDom(x)`` atoms for every universal
variable of each remaining non-guarded rule, making the result *nearly
guarded* (Proposition 3) while preserving certain answers (Theorem 1): the
chase-tree argument shows every inference of a non-guarded rule either maps
entirely onto original constants (where ACDom holds) or factors through a
rewriting.

Definition 14 extends this to nearly frontier-guarded theories: the
non-frontier-guarded rules have no unsafe variables and pass through
untouched (Proposition 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.atoms import Atom
from ..core.rules import Rule, canonical_rule_key
from ..core.theory import ACDOM, Theory
from ..guardedness.classify import (
    is_frontier_guarded_rule,
    is_guarded_rule,
    is_nearly_frontier_guarded,
    is_nearly_guarded,
)
from ..guardedness.normalize import is_normal
from ..obs.runtime import current as _obs_current
from ..obs.runtime import span as _obs_span
from ..robustness.errors import (
    BudgetExceeded,
    InvalidTheoryError,
    TranslationError,
    exhausted_error,
)
from ..robustness.governor import ResourceGovernor, resolve_governor
from ..robustness.outcome import Outcome
from .rc_rnc import (
    bag_axioms,
    guard_signature_of,
    rc_rewriting,
    rnc_rewriting,
    selection_effect,
)
from .selections import enumerate_selections

__all__ = [
    "ExpansionBudget",
    "ExpansionResult",
    "expand",
    "try_expand",
    "rewrite_frontier_guarded",
    "rewrite_nearly_frontier_guarded",
]


class ExpansionBudget(BudgetExceeded):
    """Raised when the expansion exceeds its rule budget."""

    def __init__(
        self,
        message: str = "expansion budget exceeded",
        *,
        outcome: Optional[Outcome] = None,
    ) -> None:
        super().__init__(message, reason="max_rules", outcome=outcome)


@dataclass
class ExpansionResult:
    """``ex(Σ)`` plus statistics."""

    theory: Theory
    rewritten_rules: int
    selections_tried: int
    interface_relations: set[str] = field(default_factory=set)


def _needs_rewriting(rule: Rule) -> bool:
    """Definitions 10/11 apply to non-guarded Datalog rules."""
    return rule.is_datalog() and not is_guarded_rule(rule)


def try_expand(
    theory: Theory,
    *,
    max_rules: int = 100_000,
    max_selection_domain: Optional[int] = None,
    governor: Optional[ResourceGovernor] = None,
) -> Outcome[ExpansionResult]:
    """Graceful expansion ``ex(Σ)`` of a normal frontier-guarded theory.

    ``max_selection_domain`` optionally caps ``|dom(µ)|`` per rule (the
    proof never needs domains larger than the rule's variable count, but
    the cap is a practical lever for large rules).  The governor is ticked
    once per queued rule.  On exhaustion the outcome carries the rules
    accumulated so far — each is a sound rewriting of Σ, but the closure
    is incomplete, so downstream translations built on a partial expansion
    may miss certain answers."""
    if not is_normal(theory):
        raise InvalidTheoryError(
            "expansion requires a normal theory (Proposition 1)"
        )
    for rule in theory:
        if not is_frontier_guarded_rule(rule):
            raise InvalidTheoryError(f"rule is not frontier-guarded: {rule}")
    governor = resolve_governor(governor)

    max_arity = theory.max_arity()
    # Guards are drawn from the relations of the original Σ (Defs. 10/11),
    # realized through the X_BAG containment relations (see rc_rnc).
    signature = guard_signature_of(theory)
    rules: list[Rule] = list(theory.rules) + bag_axioms(signature, max_arity)
    seen: set[tuple] = {canonical_rule_key(rule) for rule in rules}
    interface_relations: set[str] = set()
    rewritten = 0
    selections_tried = 0
    exhausted: Optional[str] = None

    queue: list[Rule] = [rule for rule in rules if _needs_rewriting(rule)]
    position = 0
    while position < len(queue) and exhausted is None:
        if governor is not None:
            exhausted = governor.tick()
            if exhausted is not None:
                break
        rule = queue[position]
        position += 1
        seen_effects: set[tuple] = set()
        for selection in enumerate_selections(
            rule, max_arity, max_domain=max_selection_domain
        ):
            effect = selection_effect(rule, selection)
            if effect in seen_effects:
                continue
            seen_effects.add(effect)
            selections_tried += 1
            for producer in (rc_rewriting, rnc_rewriting):
                bundle = producer(rule, selection, signature)
                if bundle is None or not bundle:
                    continue
                interface_relations.add(bundle.interface)
                parent_vars = {
                    v
                    for atom in rule.positive_body()
                    for v in atom.argument_variables()
                }
                for new_rule in bundle.rules():
                    key = canonical_rule_key(new_rule)
                    if key in seen:
                        continue
                    if len(rules) + 1 > max_rules:
                        exhausted = "max_rules"
                        break
                    seen.add(key)
                    rules.append(new_rule)
                    rewritten += 1
                    child_vars = {
                        v
                        for atom in new_rule.positive_body()
                        for v in atom.argument_variables()
                    }
                    # Recurse only on rewritings that consumed a variable —
                    # the completeness argument always peels the preimage of
                    # a private null of the deepest chase-tree node, so the
                    # productive rewritings strictly shrink (Section 5).
                    if _needs_rewriting(new_rule) and child_vars < parent_vars:
                        queue.append(new_rule)
                if exhausted is not None:
                    break
            if exhausted is not None:
                break

    if exhausted is not None:
        obs = _obs_current()
        if obs is not None:
            obs.inc("expansion.exhausted")
    result = ExpansionResult(
        theory=Theory(rules),
        rewritten_rules=rewritten,
        selections_tried=selections_tried,
        interface_relations=interface_relations,
    )
    return Outcome(
        value=result,
        complete=exhausted is None,
        exhausted=exhausted,
        sound=True,
        snapshot=None,
    )


def expand(
    theory: Theory,
    *,
    max_rules: int = 100_000,
    max_selection_domain: Optional[int] = None,
    governor: Optional[ResourceGovernor] = None,
) -> ExpansionResult:
    """Compute the expansion ``ex(Σ)`` of a normal frontier-guarded theory.

    Raising wrapper around :func:`try_expand`: exceeding ``max_rules``
    raises :class:`ExpansionBudget` (partial result on ``.outcome``),
    governor exhaustion raises the matching typed error."""
    outcome = try_expand(
        theory,
        max_rules=max_rules,
        max_selection_domain=max_selection_domain,
        governor=governor,
    )
    if not outcome.complete:
        reason = outcome.exhausted or "budget"
        if reason == "max_rules":
            raise ExpansionBudget(
                f"expansion exceeded {max_rules} rules", outcome=outcome
            )
        raise exhausted_error(
            reason, f"expansion exhausted ({reason})", outcome
        )
    return outcome.value


def _add_acdom_guards(rule: Rule) -> Rule:
    """Definition 13: constrain every universal argument variable of a
    non-guarded rule to the active constant domain."""
    variables = sorted(
        {
            variable
            for atom in rule.positive_body()
            for variable in atom.argument_variables()
        },
        key=lambda v: v.name,
    )
    acdom_atoms = tuple(Atom(ACDOM, (variable,)) for variable in variables)
    return Rule(rule.body + acdom_atoms, rule.head, rule.exist_vars)


def rewrite_frontier_guarded(
    theory: Theory,
    *,
    max_rules: int = 100_000,
    max_selection_domain: Optional[int] = None,
    governor: Optional[ResourceGovernor] = None,
) -> Theory:
    """``rew(Σ)`` for a normal frontier-guarded theory (Definition 13).

    The result is nearly guarded (Proposition 3) and has the same ground
    atomic consequences over the original signature for every database
    (Theorem 1)."""
    with _obs_span("translate.rewrite_fg", rules=len(theory)) as span:
        expanded = expand(
            theory,
            max_rules=max_rules,
            max_selection_domain=max_selection_domain,
            governor=governor,
        )
        rewritten = []
        for rule in expanded.theory:
            if is_guarded_rule(rule):
                rewritten.append(rule)
            else:
                rewritten.append(_add_acdom_guards(rule))
        result = Theory(rewritten)
        if not is_nearly_guarded(result):
            raise TranslationError(
                "rewriting produced a theory that is not nearly guarded "
                "(Proposition 3 violated)"
            )
        obs = _obs_current()
        if obs is not None:
            obs.gauge("rewrite_fg.rules_out", len(result))
            span.set(rules_out=len(result))
    return result


def rewrite_nearly_frontier_guarded(
    theory: Theory,
    *,
    max_rules: int = 100_000,
    max_selection_domain: Optional[int] = None,
    governor: Optional[ResourceGovernor] = None,
) -> Theory:
    """Definition 14: ``rew(Σ) = rew(Σf) ∪ Σd`` for nearly frontier-guarded
    ``Σ`` — the non-frontier-guarded rules ``Σd`` have no unsafe and no
    existential variables and need no rewriting (Proposition 4)."""
    if not is_nearly_frontier_guarded(theory):
        raise InvalidTheoryError("theory is not nearly frontier-guarded")
    frontier_part = Theory(
        rule for rule in theory if is_frontier_guarded_rule(rule)
    )
    datalog_part = tuple(
        rule for rule in theory if not is_frontier_guarded_rule(rule)
    )
    rewritten = rewrite_frontier_guarded(
        frontier_part,
        max_rules=max_rules,
        max_selection_domain=max_selection_domain,
        governor=governor,
    )
    return Theory(tuple(rewritten.rules) + datalog_part)
