"""Translations between the guardedness fragments (Sections 5–7).

* ``rewrite_frontier_guarded``          — FG → nearly guarded (Theorem 1)
* ``rewrite_nearly_frontier_guarded``   — NFG → nearly guarded (Prop. 4)
* ``rewrite_weakly_frontier_guarded``   — WFG → weakly guarded (Theorem 2)
* ``guarded_to_datalog``                — guarded → Datalog (Theorem 3)
* ``nearly_guarded_to_datalog``         — nearly guarded → Datalog (Prop. 6)
* ``axiomatize_acdom``                  — eliminate ACDom (Prop. 5)
* ``partial_grounding``                 — ``pg(Σ, D)``
* ``answer_wfg_query`` / ``answer_query`` — the Section 7 pipeline
"""

from .acdom import axiomatize_acdom, starred
from .annotations import (
    NotCoherentlyGuardedError,
    WfgRewriting,
    annotate_database,
    annotate_theory,
    deannotate_theory,
    rewrite_weakly_frontier_guarded,
)
from .expansion import (
    ExpansionBudget,
    ExpansionResult,
    expand,
    rewrite_frontier_guarded,
    rewrite_nearly_frontier_guarded,
)
from .grounding import ground_program, partial_grounding
from .pipeline import PipelineReport, answer_query, answer_wfg_query
from .rc_rnc import (
    RcRncBundle,
    bag_axioms,
    bag_relation,
    guard_signature_of,
    rc_rewriting,
    rnc_rewriting,
    selection_effect,
)
from .saturation import (
    SaturationBudget,
    SaturationResult,
    guarded_to_datalog,
    nearly_guarded_to_datalog,
    saturate,
)
from .selections import Selection, covered_atoms, enumerate_selections, keep_set

__all__ = [
    "ExpansionBudget",
    "ExpansionResult",
    "NotCoherentlyGuardedError",
    "PipelineReport",
    "RcRncBundle",
    "SaturationBudget",
    "SaturationResult",
    "Selection",
    "WfgRewriting",
    "annotate_database",
    "annotate_theory",
    "answer_query",
    "answer_wfg_query",
    "axiomatize_acdom",
    "bag_axioms",
    "bag_relation",
    "covered_atoms",
    "deannotate_theory",
    "enumerate_selections",
    "expand",
    "ground_program",
    "guard_signature_of",
    "guarded_to_datalog",
    "keep_set",
    "nearly_guarded_to_datalog",
    "partial_grounding",
    "rc_rewriting",
    "rewrite_frontier_guarded",
    "rewrite_nearly_frontier_guarded",
    "rewrite_weakly_frontier_guarded",
    "rnc_rewriting",
    "saturate",
    "selection_effect",
    "starred",
]
