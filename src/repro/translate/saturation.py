"""Guarded rules → Datalog via the Figure 3 calculus (Theorem 3, Prop. 6).

``Ξ(Σ)`` is the closure of a guarded theory under three inference rules:

1. **Head-atom projection** — from ``α → β ∧ A`` derive ``α → A`` when
   ``A`` carries no existential variable.
2. **Guarded composition** — from ``α → β`` and a Datalog rule
   ``γ1 ∧ γ2 → δ`` with a homomorphism ``h`` from ``γ2`` into ``β`` such
   that ``vars(h(γ1)) ⊆ vars(α)``, derive ``α ∧ h(γ1) → β ∧ h(δ)``.
3. **Body unification** — from ``α → β`` derive ``g(α) → g(β)`` for
   ``g : vars(α) → vars(α)``.

``dat(Σ)`` keeps the existential-variable-free rules of the closure; it is
a plain Datalog program with the same ground atomic consequences as ``Σ``
over every database (Theorem 3).  Proposition 6 extends this to nearly
guarded theories: saturate the guarded part, keep the safe Datalog part.

Implementation notes:

* Conclusions never introduce variables beyond the first premise's, so the
  closure is finite (the ``2^((v+c)^p · m)`` bound of Section 6); rules are
  de-duplicated by a canonical renaming key.
* Rule 3 is realized by iterated pairwise variable merges, which generate
  every variable collapse up to the α-renaming the canonical key already
  quotients away.
* For rule 2 the homomorphism ``h`` is found by backtracking each body atom
  of the Datalog premise either *into* the head ``β`` (the ``γ2`` part) or
  deferring it to ``γ1``; variables of ``γ1`` that remain unmapped are then
  bound to universal variables of the first premise in all possible ways —
  a sound superset of the paper's reading that keeps the calculus complete
  without a global standardization convention.
* A configurable budget aborts pathological closures with
  :class:`SaturationBudget` (the translation is inherently worst-case
  double exponential, Section 6)."""

from __future__ import annotations

import itertools
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from ..core.atoms import Atom
from ..core.rules import Rule, canonical_rule_key
from ..core.terms import Term, Variable
from ..core.theory import Theory
from ..guardedness.classify import is_guarded_rule, is_nearly_guarded
from ..obs.runtime import current as _obs_current
from ..robustness.errors import (
    BudgetExceeded,
    InvalidTheoryError,
    exhausted_error,
)
from ..robustness.governor import ResourceGovernor, resolve_governor
from ..robustness.outcome import Outcome

__all__ = [
    "SaturationBudget",
    "SaturationResult",
    "SaturationSnapshot",
    "saturate",
    "try_saturate",
    "resume_saturation",
    "guarded_to_datalog",
    "nearly_guarded_to_datalog",
]


class SaturationBudget(BudgetExceeded):
    """Raised when the closure exceeds the configured rule budget.

    The partial closure (and its resume snapshot, for the goal-directed
    strategy) rides on the exception's ``outcome`` attribute."""

    def __init__(self, message: str = "saturation budget exceeded", *, outcome=None):
        super().__init__(message, reason="max_rules", outcome=outcome)


class _Exhausted(Exception):
    """Internal: unwinds the saturation loops with a consistent state."""

    def __init__(self, reason: str) -> None:
        self.reason = reason


@dataclass
class SaturationResult:
    """The closure ``Ξ(Σ)`` and the extracted Datalog program ``dat(Σ)``."""

    closure: Theory
    datalog: Theory
    derived_rules: int
    iterations: int


def _dedup_body(body: Iterable[Atom]) -> tuple[Atom, ...]:
    seen: set[Atom] = set()
    ordered: list[Atom] = []
    for atom in sorted(body):
        if atom not in seen:
            seen.add(atom)
            ordered.append(atom)
    return tuple(ordered)


def _dedup_head(head: Iterable[Atom]) -> tuple[Atom, ...]:
    return _dedup_body(head)


def _normalize_rule(rule: Rule) -> Rule:
    """Canonical atom ordering and duplicate removal (sets, per the paper)."""
    head = _dedup_head(rule.head)
    evars = tuple(
        variable
        for variable in rule.exist_vars
        if any(variable in atom.variables() for atom in head)
    )
    return Rule(_dedup_body(rule.positive_body()), head, evars)


def _project_head(rule: Rule) -> Iterator[Rule]:
    """Inference rule 1: keep a single existential-free head atom."""
    if len(rule.head) <= 1 and not rule.exist_vars:
        return
    evars = rule.evars()
    for atom in rule.head:
        if atom.variables() & evars:
            continue
        yield Rule(rule.body, (atom,))


def _merge_variables(rule: Rule) -> Iterator[Rule]:
    """Inference rule 3 via pairwise merges of body variables."""
    body_vars = sorted(rule.uvars(), key=lambda v: v.name)
    for source, target in itertools.permutations(body_vars, 2):
        mapping = {source: target}
        try:
            yield rule.substitute(mapping)
        except Exception:
            continue


def _head_atoms_as_targets(rule: Rule) -> dict[tuple, list[Atom]]:
    """Head atoms of the first premise, bucketed by relation identity, so
    each Datalog body atom only unifies against same-relation targets.

    Memoized on the rule instance — a saturation pass composes the same
    premise against every Datalog rule, so the buckets are reused."""
    cached = rule.__dict__.get("_head_targets")
    if cached is None:
        buckets: dict[tuple, list[Atom]] = {}
        for atom in rule.head:
            buckets.setdefault(atom.relation_key, []).append(atom)
        object.__setattr__(rule, "_head_targets", buckets)
        return buckets
    return cached


def _match_into_head(
    pattern: Atom, targets: Iterable[Atom], assignment: dict[Variable, Term]
) -> Iterator[dict[Variable, Term]]:
    """Unify a Datalog body atom with one of the same-relation head atoms
    of the first premise, extending ``assignment``.

    Terms are interned, so ``is`` comparisons are exact; the assignment is
    only copied once a new binding is actually needed."""
    pattern_terms = pattern.all_terms
    for target in targets:
        extension: dict[Variable, Term] | None = None
        ok = True
        for pattern_term, target_term in zip(pattern_terms, target.all_terms):
            if isinstance(pattern_term, Variable):
                source = assignment if extension is None else extension
                bound = source.get(pattern_term)
                if bound is None:
                    if extension is None:
                        extension = dict(assignment)
                    extension[pattern_term] = target_term
                elif bound is not target_term:
                    ok = False
                    break
            elif pattern_term is not target_term:
                ok = False
                break
        if ok:
            yield dict(assignment) if extension is None else extension


def _compose(
    first: Rule,
    datalog: Rule,
    max_leftover: int = 3,
    require_evar_contact: bool = False,
) -> Iterator[Rule]:
    """Inference rule 2 (guarded composition).

    Splits the Datalog premise's body into a part ``γ2`` homomorphically
    mapped into ``head(first)`` and a deferred part ``γ1`` whose image must
    live on ``vars(first.body)``.

    With ``require_evar_contact`` only compositions whose homomorphism
    touches an existential variable of the first premise are produced:
    compositions entirely on the universal side are recovered at Datalog
    evaluation time by chaining the premise with head projections, so they
    are redundant for ``dat(Σ)`` — this is the goal-directed pruning."""
    first_uvars = first.uvars()
    alpha_vars = sorted(first_uvars, key=lambda v: v.name)
    if not alpha_vars and any(
        isinstance(t, Variable) for atom in datalog.positive_body() for t in atom.args
    ):
        # γ1 variables would have nowhere to map; γ2-only splits may still
        # work, handled below by the general search.
        pass
    targets = _head_atoms_as_targets(first)
    body = datalog.positive_body()
    if require_evar_contact and not any(
        atom.relation_key in targets for atom in body
    ):
        # Every surviving composition needs a non-empty homomorphism into
        # head(first) (all-deferred splits have no existential contact), and
        # a body atom can only map onto a same-relation head atom — no
        # relation overlap means nothing to enumerate.
        return

    def search(
        index: int,
        assignment: dict[Variable, Term],
        deferred: list[Atom],
        used_any: bool,
    ) -> Iterator[tuple[dict[Variable, Term], list[Atom]]]:
        if index == len(body):
            yield assignment, deferred
            return
        atom = body[index]
        for extension in _match_into_head(
            atom, targets.get(atom.relation_key, ()), assignment
        ):
            yield from search(index + 1, extension, deferred, True)
        # defer this atom to γ1
        yield from search(index + 1, assignment, deferred + [atom], used_any)

    evar_set = set(first.exist_vars)
    for assignment, deferred in search(0, {}, [], False):
        if require_evar_contact and not any(
            image in evar_set for image in assignment.values()
        ):
            continue
        leftover = sorted(
            {
                variable
                for atom in deferred
                for variable in atom.variables()
                if variable not in assignment
            },
            key=lambda v: v.name,
        )
        if len(leftover) > max_leftover:
            continue
        if leftover and not alpha_vars:
            continue
        for images in itertools.product(alpha_vars, repeat=len(leftover)):
            mapping: dict[Term, Term] = dict(assignment)
            mapping.update(zip(leftover, images))
            gamma1 = [atom.substitute(mapping) for atom in deferred]
            if any(
                term not in first_uvars
                for atom in gamma1
                for term in atom.variables()
            ):
                continue
            delta = [atom.substitute(mapping) for atom in datalog.head]
            new_body = _dedup_body(tuple(first.positive_body()) + tuple(gamma1))
            new_head = _dedup_head(tuple(first.head) + tuple(delta))
            try:
                yield Rule(new_body, new_head, first.exist_vars)
            except Exception:
                continue


@dataclass
class _Closure:
    rules: list[Rule] = field(default_factory=list)
    keys: set[tuple] = field(default_factory=set)

    def add(self, rule: Rule) -> bool:
        rule = _normalize_rule(rule)
        key = canonical_rule_key(rule)
        if key in self.keys:
            return False
        self.keys.add(key)
        self.rules.append(rule)
        return True


def saturate(
    theory: Theory,
    *,
    max_rules: int = 50_000,
    require_guarded: bool = True,
    strategy: str = "goal-directed",
    governor: Optional[ResourceGovernor] = None,
) -> SaturationResult:
    """Compute ``Ξ(Σ)`` and ``dat(Σ)`` (Definition 19).

    ``strategy="goal-directed"`` (the default, and the spirit of the
    paper's Section 9 remarks) is a consequence-based restriction of the
    Figure 3 closure:

    * rule 2 (composition) only uses an *existential* rule as first premise
      — the head of an existential rule is the evolving description of the
      anonymous subtree it creates, and Datalog rules are composed into it;
    * rule 3 (variable merges) is only applied to existential rules —
      merged instances of pure Datalog rules are subsumed at evaluation
      time by the unmerged rule;
    * rule 1 (projection) extracts existential-free head atoms of
      existential rules into the Datalog pool, which feeds back as second
      premises.

    Ground-atom consequences that the chase derives through labeled nulls
    always factor through the existential rule that created each null, so
    the restricted closure derives the same Datalog program — this is the
    classic consequence-driven completion scheme (cf. EL / Horn-SHIQ,
    which the paper cites as its inspiration for Definition 19).

    ``strategy="exhaustive"`` applies all three inference rules to all
    premises (the literal Definition 19); it terminates by the same
    counting argument but is doubly exponential in practice and only usable
    on tiny inputs.

    ``max_rules`` bounds the closure size; exceeding it raises
    :class:`SaturationBudget` (the partial closure rides on the
    exception's ``outcome``).  Use :func:`try_saturate` for the
    non-raising, resumable variant."""
    outcome = try_saturate(
        theory,
        max_rules=max_rules,
        require_guarded=require_guarded,
        strategy=strategy,
        governor=governor,
    )
    if not outcome.complete:
        reason = outcome.exhausted or "budget"
        if reason == "max_rules":
            raise SaturationBudget(
                f"saturation exceeded {max_rules} rules", outcome=outcome
            )
        raise exhausted_error(
            reason, f"saturation exhausted ({reason})", outcome
        )
    return outcome.value


def try_saturate(
    theory: Theory,
    *,
    max_rules: int = 50_000,
    require_guarded: bool = True,
    strategy: str = "goal-directed",
    governor: Optional[ResourceGovernor] = None,
) -> Outcome[SaturationResult]:
    """Graceful :func:`saturate`: exhaustion (rule budget, deadline,
    cancellation) returns a structured partial :class:`Outcome` instead of
    discarding the closure.

    The partial closure is *sound but incomplete*: every rule in it is
    Figure-3 derivable (so every answer its ``dat(Σ)`` yields is a certain
    answer), but consequences may be missing.  For the goal-directed
    strategy the outcome carries a :class:`SaturationSnapshot`; pass it to
    :func:`resume_saturation` to continue under a fresh budget."""
    if strategy not in ("goal-directed", "exhaustive"):
        raise InvalidTheoryError(f"unknown saturation strategy {strategy!r}")
    if require_guarded:
        for rule in theory:
            if rule.has_negation():
                raise InvalidTheoryError(
                    "saturation is defined for positive rules"
                )
            if not is_guarded_rule(rule):
                raise InvalidTheoryError(f"rule is not guarded: {rule}")
    governor = resolve_governor(governor)

    obs = _obs_current()
    run_span = (
        obs.span("translate.saturate", rules=len(theory), strategy=strategy)
        if obs is not None
        else nullcontext()
    )
    with run_span as span:
        if strategy == "exhaustive":
            outcome = _saturate_exhaustive(theory, max_rules, governor)
        else:
            outcome = _saturate_goal_directed(
                theory, max_rules, governor=governor
            )
        result = outcome.value
        if obs is not None:
            obs.inc("saturation.derived_rules", result.derived_rules)
            obs.gauge("saturation.closure_rules", len(result.closure))
            obs.gauge("saturation.datalog_rules", len(result.datalog))
            if not outcome.complete:
                obs.inc("saturation.exhausted")
            span.set(
                closure_rules=len(result.closure),
                datalog_rules=len(result.datalog),
                iterations=result.iterations,
                exhausted=outcome.exhausted,
            )
    return outcome


def resume_saturation(
    snapshot: "SaturationSnapshot",
    *,
    max_rules: int = 50_000,
    governor: Optional[ResourceGovernor] = None,
) -> Outcome[SaturationResult]:
    """Continue an exhausted goal-directed saturation from its snapshot
    under a fresh budget.

    The closure operator is monotone, so restarting the fixpoint loop
    from the checkpointed state converges to the *same* closure as an
    uninterrupted run (resume-after-cut ≡ uninterrupted)."""
    return _saturate_goal_directed(
        None,
        max_rules,
        governor=resolve_governor(governor),
        snapshot=snapshot,
    )


@dataclass
class _Context:
    """A saturation context: one existential rule instance shape.

    All Figure-3 derivation chains rooted at the same existential rule and
    the same (possibly extended/merged) body describe the *same* canonical
    nulls of the oblivious chase, so their head atoms hold simultaneously
    and can be accumulated in a single monotonically growing head set."""

    base: int
    body: frozenset[Atom]
    evars: tuple[Variable, ...]
    head: set[Atom]
    _cached_rule: Optional[Rule] = None
    _cached_head_size: int = -1

    def key(self) -> tuple:
        return (self.base, self.body, self.evars)

    def to_rule(self) -> Rule:
        # The head only ever grows (monotone accumulation), so its size
        # identifies the materialized rule; body/evars are immutable.
        if self._cached_rule is None or self._cached_head_size != len(self.head):
            self._cached_rule = Rule(
                _dedup_body(self.body), _dedup_head(self.head), self.evars
            )
            self._cached_head_size = len(self.head)
        return self._cached_rule


@dataclass
class SaturationSnapshot:
    """Checkpoint of a goal-directed saturation: the context table, the
    Datalog pool, and the progress counters.  Because the closure is a
    monotone fixpoint, resuming from this state and running to quiescence
    yields the same closure as an uninterrupted run."""

    contexts: list[tuple[int, frozenset[Atom], tuple[Variable, ...], frozenset[Atom]]]
    datalog_rules: list[Rule]
    datalog_keys: set[tuple]
    derived: int
    iterations: int


def _saturate_goal_directed(
    theory: Optional[Theory],
    max_rules: int,
    *,
    governor: Optional[ResourceGovernor] = None,
    snapshot: Optional[SaturationSnapshot] = None,
) -> Outcome[SaturationResult]:
    datalog = _Closure()
    contexts: dict[tuple, _Context] = {}
    derived = 0
    iterations = 0

    if snapshot is not None:
        datalog.rules = list(snapshot.datalog_rules)
        datalog.keys = set(snapshot.datalog_keys)
        for base, body, evars, head in snapshot.contexts:
            contexts[(base, body, evars)] = _Context(base, body, evars, set(head))
        derived = snapshot.derived
        iterations = snapshot.iterations

    def tick() -> None:
        if governor is not None:
            reason = governor.tick()
            if reason is not None:
                raise _Exhausted(reason)

    def add_context(
        base: int,
        body: frozenset[Atom],
        evars: tuple[Variable, ...],
        head_atoms: Iterable[Atom],
    ) -> bool:
        key = (base, body, evars)
        context = contexts.get(key)
        if context is None:
            # Check before inserting so the checkpointed state stays
            # within budget (a resumed run sees a consistent table).
            if len(contexts) + len(datalog.rules) + 1 > max_rules:
                raise _Exhausted("max_rules")
            contexts[key] = _Context(base, body, evars, set(head_atoms))
            return True
        before = len(context.head)
        context.head |= set(head_atoms)
        return len(context.head) != before

    obs = _obs_current()
    exhausted: Optional[str] = None
    try:
        if snapshot is None:
            if theory is None:
                raise InvalidTheoryError("saturation needs a theory or a snapshot")
            base_index = 0
            for rule in theory:
                normalized = _normalize_rule(rule)
                if normalized.is_datalog():
                    datalog.add(normalized)
                else:
                    add_context(
                        base_index,
                        frozenset(normalized.positive_body()),
                        normalized.exist_vars,
                        normalized.head,
                    )
                    base_index += 1

        changed = True
        while changed:
            changed = False
            iterations += 1
            derived_before = derived
            # Rule 3: merges of body variables, creating sibling contexts.
            for context in list(contexts.values()):
                tick()
                body_vars = sorted(
                    {v for atom in context.body for v in atom.variables()},
                    key=lambda v: v.name,
                )
                for source, target in itertools.permutations(body_vars, 2):
                    mapping = {source: target}
                    merged_body = frozenset(
                        atom.substitute(mapping) for atom in context.body
                    )
                    merged_head = [
                        atom.substitute(mapping) for atom in context.head
                    ]
                    if add_context(
                        context.base, merged_body, context.evars, merged_head
                    ):
                        derived += 1
                        changed = True
            # Rule 2: compose every Datalog rule into every context head.
            for context in list(contexts.values()):
                premise = context.to_rule()
                for second in list(datalog.rules):
                    tick()
                    for conclusion in _compose(
                        premise, second, require_evar_contact=True
                    ):
                        new_body = frozenset(conclusion.positive_body())
                        if add_context(
                            context.base, new_body, context.evars, conclusion.head
                        ):
                            derived += 1
                            changed = True
            # Rule 1: project existential-free head atoms into the Datalog pool.
            for context in list(contexts.values()):
                tick()
                evar_set = set(context.evars)
                body = _dedup_body(context.body)
                for atom in context.head:
                    if atom.variables() & evar_set:
                        continue
                    projected = Rule(body, (atom,))
                    if len(contexts) + len(datalog.rules) + 1 > max_rules:
                        if canonical_rule_key(_normalize_rule(projected)) in datalog.keys:
                            continue
                        raise _Exhausted("max_rules")
                    if datalog.add(projected):
                        derived += 1
                        changed = True
            if obs is not None:
                obs.observe("saturation_rules_added", derived - derived_before)
    except _Exhausted as exc:
        exhausted = exc.reason

    closure_theory = Theory(
        tuple(context.to_rule() for context in contexts.values())
        + tuple(datalog.rules)
    )
    datalog_theory = Theory(datalog.rules)
    result = SaturationResult(
        closure=closure_theory,
        datalog=datalog_theory,
        derived_rules=derived,
        iterations=iterations,
    )
    resume_state = None
    if exhausted is not None:
        resume_state = SaturationSnapshot(
            contexts=[
                (c.base, c.body, c.evars, frozenset(c.head))
                for c in contexts.values()
            ],
            datalog_rules=list(datalog.rules),
            datalog_keys=set(datalog.keys),
            derived=derived,
            iterations=iterations,
        )
    return Outcome(
        value=result,
        complete=exhausted is None,
        exhausted=exhausted,
        sound=True,
        snapshot=resume_state,
    )


def _saturate_exhaustive(
    theory: Theory, max_rules: int, governor: Optional[ResourceGovernor] = None
) -> Outcome[SaturationResult]:
    closure = _Closure()
    for rule in theory:
        closure.add(_normalize_rule(rule))

    iterations = 0
    derived = 0
    index = 0
    exhausted: Optional[str] = None
    try:
        while index < len(closure.rules):
            if governor is not None:
                reason = governor.tick()
                if reason is not None:
                    raise _Exhausted(reason)
            current = closure.rules[index]
            index += 1
            iterations += 1
            new_rules: list[Rule] = []
            new_rules.extend(_project_head(current))
            new_rules.extend(_merge_variables(current))
            snapshot = list(closure.rules)
            for other in snapshot:
                if other.is_datalog():
                    new_rules.extend(_compose(current, other))
                if current.is_datalog():
                    new_rules.extend(_compose(other, current))
            for rule in new_rules:
                if closure.add(rule):
                    derived += 1
                    if len(closure.rules) > max_rules:
                        raise _Exhausted("max_rules")
    except _Exhausted as exc:
        exhausted = exc.reason

    closure_theory = Theory(closure.rules)
    datalog_theory = Theory(rule for rule in closure.rules if rule.is_datalog())
    result = SaturationResult(
        closure=closure_theory,
        datalog=datalog_theory,
        derived_rules=derived,
        iterations=iterations,
    )
    return Outcome(
        value=result,
        complete=exhausted is None,
        exhausted=exhausted,
        sound=True,
        snapshot=None,
    )


def guarded_to_datalog(
    theory: Theory,
    *,
    max_rules: int = 50_000,
    governor: Optional[ResourceGovernor] = None,
) -> Theory:
    """``dat(Σ)`` for a guarded theory (Theorem 3)."""
    return saturate(theory, max_rules=max_rules, governor=governor).datalog


def nearly_guarded_to_datalog(
    theory: Theory,
    *,
    max_rules: int = 50_000,
    governor: Optional[ResourceGovernor] = None,
) -> Theory:
    """Proposition 6: ``dat(Σg) ∪ Σd`` for a nearly guarded theory.

    ``Σg`` are the guarded rules, ``Σd`` the remaining (unsafe-variable- and
    existential-free) Datalog rules, which need no rewriting because their
    bodies only ever match original constants."""
    if not is_nearly_guarded(theory):
        raise InvalidTheoryError("theory is not nearly guarded")
    guarded_part = [rule for rule in theory if is_guarded_rule(rule)]
    datalog_part = [rule for rule in theory if not is_guarded_rule(rule)]
    saturated = saturate(
        Theory(guarded_part), max_rules=max_rules, governor=governor
    )
    return Theory(tuple(saturated.datalog.rules) + tuple(datalog_part))
