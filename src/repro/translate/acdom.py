"""Axiomatizing the built-in ``ACDom`` relation (Definition 15, Prop. 5).

``rew(Σ)`` uses the built-in active-constant-domain relation.  To obtain a
self-contained theory, every relation ``R`` is doubled by a starred copy
``R*``; the theory is rewritten over the starred relations and extended
with

  (a) ``R(~x) → R*(~x)``                      (copy the input),
  (b) ``R(~x) → ACDom*(xi)`` for every ``i``  (collect input constants),
  (c) ``→ ACDom*(c)`` for every constant of Σ.

Answers over the starred output relation coincide with the original
query's answers on every database (Proposition 5).
"""

from __future__ import annotations

from ..core.atoms import Atom
from ..core.rules import Rule
from ..core.terms import Variable
from ..core.theory import ACDOM, Query, Theory

__all__ = ["axiomatize_acdom", "STAR_SUFFIX", "starred"]

STAR_SUFFIX = "_star"


def starred(relation: str) -> str:
    """The starred copy ``R*`` of a relation name."""
    return f"{relation}{STAR_SUFFIX}"


def _star_atom(atom: Atom) -> Atom:
    return atom.rename_relation(starred(atom.relation))


def _star_rule(rule: Rule) -> Rule:
    body = tuple(
        literal.__class__(_star_atom(literal.atom))
        if hasattr(literal, "atom")
        else _star_atom(literal)
        for literal in rule.body
    )
    head = tuple(_star_atom(atom) for atom in rule.head)
    return Rule(body, head, rule.exist_vars)


def axiomatize_acdom(query: Query) -> Query:
    """Definition 15: eliminate the built-in ACDom from a nearly guarded
    query.  Returns ``(Σ*, Q*)`` with ``ans((Σ,Q),D) = ans((Σ*,Q*),D)``.

    The construction preserves near guardedness: copy rules (a)/(b) are
    guarded by their single body atom, and starring does not change any
    rule's structure."""
    theory = query.theory
    star_rules = [_star_rule(rule) for rule in theory]

    bridge_rules: list[Rule] = []
    for name, arity, annotation_arity in sorted(theory.relation_keys()):
        if name == ACDOM:
            continue
        variables = tuple(Variable(f"x{i}") for i in range(arity))
        annotation = tuple(Variable(f"a{i}") for i in range(annotation_arity))
        source = Atom(name, variables, annotation)
        # (a) copy input facts into the starred relation
        bridge_rules.append(
            Rule((source,), (Atom(starred(name), variables, annotation),))
        )
        # (b) every input constant is in the starred active domain
        for variable in variables:
            bridge_rules.append(
                Rule((source,), (Atom(starred(ACDOM), (variable,)),))
            )

    # (c) constants of the theory
    constant_rules = [
        Rule((), (Atom(starred(ACDOM), (constant,)),))
        for constant in sorted(theory.constants())
    ]

    return Query(
        Theory(star_rules + bridge_rules + constant_rules),
        starred(query.output),
    )
