"""The end-to-end Section 7 pipeline.

Conjunctive query answering over a database enriched with weakly
frontier-guarded rules, via the paper's five-step procedure:

  1. compute the weakly guarded theory ``rew(Σ)``        (Theorem 2),
  2. partially ground ``rew(Σ)`` w.r.t. ``D``            (``pg``),
  3. saturate the guarded result into Datalog            (Theorem 3),
  4. (implicitly) ground and
  5. evaluate the Datalog program over ``D``.

Steps 4/5 are fused: the semi-naive Datalog engine *is* grounding-on-
demand, which matches the complexity accounting of the paper (the
grounding is what a bottom-up engine materializes anyway).

This module also provides :func:`answer_query`, a one-call interface
dispatching on the theory's guardedness class: Datalog queries go straight
to the engine, PTime classes are translated, weakly guarded ones run the
pipeline, and anything else falls back to a budgeted chase.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Optional

from ..core.database import Database
from ..core.terms import Constant
from ..core.theory import Query
from ..chase.runner import ChaseBudget, certain_answers
from ..datalog.engine import datalog_answers, evaluate
from ..guardedness.classify import classify
from ..guardedness.normalize import normalize
from ..obs.runtime import current as _obs_current
from ..obs.runtime import span as _obs_span
from ..robustness.governor import ResourceGovernor, governed, resolve_governor
from .annotations import rewrite_weakly_frontier_guarded
from .expansion import rewrite_nearly_frontier_guarded
from .grounding import partial_grounding
from .saturation import nearly_guarded_to_datalog

__all__ = ["PipelineReport", "answer_wfg_query", "answer_query"]


@dataclass
class PipelineReport:
    """Sizes and intermediate artifacts of a Section 7 run."""

    rewritten_rules: int = 0
    grounded_rules: int = 0
    datalog_rules: int = 0
    answers: set[tuple[Constant, ...]] = field(default_factory=set)


def answer_wfg_query(
    query: Query,
    database: Database,
    *,
    max_rules: int = 100_000,
    saturation_max_rules: int = 200_000,
    governor: Optional[ResourceGovernor] = None,
) -> PipelineReport:
    """Answer a weakly frontier-guarded query by the five-step pipeline.

    An explicit ``governor`` is installed ambiently for the duration, so
    every stage (rewriting, saturation, evaluation) shares its deadline
    and cancellation token."""
    report = PipelineReport()
    obs = _obs_current()
    resolved = resolve_governor(governor)
    scope = governed(resolved) if resolved is not None else nullcontext()

    with scope, _obs_span("pipeline.answer_wfg", output=query.output):
        # Step 1: WFG → WG (Theorem 2).
        with _obs_span("pipeline.rewrite"):
            rewriting = rewrite_weakly_frontier_guarded(
                query.theory, max_rules=max_rules
            )
            report.rewritten_rules = len(rewriting.theory)
            prepared = rewriting.prepare_database(database)

        # Step 2: partial grounding → guarded theory (linear variables/rule).
        with _obs_span("pipeline.ground"):
            grounded = partial_grounding(rewriting.theory, prepared)
            report.grounded_rules = len(grounded)

        # Step 3: guarded → Datalog (Theorem 3).
        with _obs_span("pipeline.saturate"):
            datalog = nearly_guarded_to_datalog(
                grounded, max_rules=saturation_max_rules
            )
            report.datalog_rules = len(datalog)

        # Steps 4+5: evaluate (semi-naive = grounding on demand).
        with _obs_span("pipeline.evaluate"):
            fixpoint = evaluate(datalog, prepared)
        raw = {
            tuple(atom.args)
            for key in fixpoint.relations()
            if key[0] == query.output
            for atom in fixpoint.atoms_for(key)
            if all(isinstance(term, Constant) for term in atom.args)
        }
        report.answers = {
            rewriting.restore_answer(query.output, answer) for answer in raw
        }
    if obs is not None:
        obs.gauge("pipeline.rewritten_rules", report.rewritten_rules)
        obs.gauge("pipeline.grounded_rules", report.grounded_rules)
        obs.gauge("pipeline.datalog_rules", report.datalog_rules)
    return report


def answer_query(
    query: Query,
    database: Database,
    *,
    budget: Optional[ChaseBudget] = None,
    max_rules: int = 100_000,
    governor: Optional[ResourceGovernor] = None,
) -> set[tuple[Constant, ...]]:
    """Answer ``(Σ, Q)`` over ``D`` choosing a strategy by classification.

    * plain Datalog          → semi-naive engine,
    * (nearly) (frontier-)guarded (PTime classes) → translate to Datalog
      (Theorems 1/3, Propositions 4/6) and evaluate,
    * weakly (frontier-)guarded → Section 7 pipeline,
    * otherwise → budgeted restricted chase (raises if truncated).

    An explicit ``governor`` is installed ambiently so the chosen strategy
    — whichever engines it reaches — shares one deadline/token.
    """
    if governor is not None:
        with governed(governor):
            return answer_query(
                query, database, budget=budget, max_rules=max_rules
            )
    theory = query.theory
    labels = classify(theory)
    if labels.datalog and not theory.has_negation():
        with _obs_span("pipeline.answer_query", strategy="datalog"):
            return datalog_answers(query, database)
    if labels.nearly_guarded or labels.nearly_frontier_guarded:
        with _obs_span("pipeline.answer_query", strategy="translate"):
            normal = normalize(theory).theory
            if classify(normal).nearly_guarded:
                datalog = nearly_guarded_to_datalog(normal, max_rules=max_rules)
            else:
                rewritten = rewrite_nearly_frontier_guarded(
                    normal, max_rules=max_rules
                )
                datalog = nearly_guarded_to_datalog(
                    rewritten, max_rules=max_rules
                )
            # evaluate and scan: the output relation may be absent from the
            # Datalog program (no existential-free consequence mentions it)
            # while still holding on input facts
            from ..chase.runner import answers_in

            fixpoint = evaluate(datalog, database)
            return answers_in(fixpoint, query.output)
    if labels.weakly_guarded or labels.weakly_frontier_guarded:
        return answer_wfg_query(query, database, max_rules=max_rules).answers
    with _obs_span("pipeline.answer_query", strategy="chase"):
        return certain_answers(query, database, budget=budget)
