"""rc- and rnc-rewritings (Definitions 10 and 11).

Both rewritings split a non-guarded Datalog rule ``σ`` of a normal
frontier-guarded theory into rules communicating through a fresh interface
relation ``H``:

* **remove-covered (rc)** pulls the ``µ``-covered atoms out of ``σ``;
  ``σ′ = R(~x) ∧ µ(cov(σ,µ)) → H(~y)`` is guarded by a relation ``R`` of
  the signature, ``σ′′ = H(~y) ∧ µ(body∖cov) → µ(head)`` is the
  structurally smaller frontier-guarded remainder.
* **remove-non-covered (rnc)** pulls the complement out;
  ``σ′ = R(~x) ∧ µ(body∖cov) → H(~y)`` is frontier-guarded and smaller,
  ``σ′′ = P(~z) ∧ H(~y) ∧ µ(cov) → µ(head)`` is guarded by ``P``.

**Containment-guard encoding.**  The definitions quantify over *every*
signature relation ``R``/``P`` and every argument arrangement containing
the required variables — semantically, the guard atom only asserts that
*some atom of the original signature contains all the required terms*.  We
encode that assertion once and for all with auxiliary relations::

    X_BAG_j(t1, …, tj)   "some Σ-atom's arguments include t1 … tj"

defined by the guarded axioms ``R(x1,…,xa) → X_BAG_j(xi1,…,xij)`` for every
ordered ``j``-tuple of distinct positions of every relation of Σ (``j ≤ k``
= the maximal arity).  Each rewriting then needs exactly one producer and
one consumer (rnc: one producer per projected variable) with ``X_BAG``
guards, instead of the paper's best-case-exponential family — the set of
satisfying instantiations, and hence the certain answers, are identical.
This deviation from the literal Definition 10/11 output is recorded in
DESIGN.md.

Annotations: the paper gives ``H`` "the annotation of head(σ)".  We
implement the safety-complete generalization — ``H`` carries exactly the
annotation variables that must flow between the two halves (those common to
the removed part and the remaining part or head), which coincides with the
paper's choice on the theories produced by ``a(Σ)`` in Section 5.2 while
keeping every split rule safe.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..core.atoms import Atom
from ..core.rules import Rule, RuleError
from ..core.terms import Variable
from ..core.theory import ACDOM, Theory
from .selections import Selection, covered_atoms, keep_set

__all__ = [
    "RcRncBundle",
    "GuardSignature",
    "guard_signature_of",
    "bag_axioms",
    "bag_relation",
    "rc_rewriting",
    "rnc_rewriting",
    "selection_effect",
]

#: Prefix of auxiliary relations introduced by the translation.
INTERFACE_PREFIX = "X"

#: Candidate guard relations: (name, arity, annotation arity) triples.
GuardSignature = tuple[tuple[str, int, int], ...]


def guard_signature_of(theory: Theory) -> GuardSignature:
    """Guard candidates: the relations *of the original theory Σ* — the
    definitions draw ``R``/``P`` from Σ; built-ins and auxiliary relations
    are excluded."""
    return tuple(
        sorted(
            key
            for key in theory.relation_keys()
            if key[0] != ACDOM and not key[0].startswith(f"{INTERFACE_PREFIX}_")
        )
    )


def bag_relation(size: int) -> str:
    """The containment relation for ``size`` terms."""
    return f"{INTERFACE_PREFIX}_BAG{size}"


def bag_axioms(signature: GuardSignature, max_size: int) -> list[Rule]:
    """Guarded Datalog axioms populating the ``X_BAG_j`` relations.

    For every relation ``R`` of the signature and every ordered tuple of
    ``j ≤ max_size`` distinct argument positions, derive that those
    argument terms co-occur in an atom.  Annotation positions of annotated
    relations are opaque payload and do not contribute."""
    rules: list[Rule] = []
    for name, arity, annotation_arity in signature:
        if arity == 0:
            continue
        variables = tuple(Variable(f"x{i}") for i in range(arity))
        annotation = tuple(Variable(f"a{i}") for i in range(annotation_arity))
        source = Atom(name, variables, annotation)
        for size in range(1, min(arity, max_size) + 1):
            for positions in itertools.permutations(range(arity), size):
                target = Atom(bag_relation(size), tuple(variables[p] for p in positions))
                rules.append(Rule((source,), (target,)))
    return rules


@dataclass
class RcRncBundle:
    """All rewriting rules for one ``(σ, µ, kind)`` triple."""

    kind: str
    interface: str
    producers: list[Rule] = field(default_factory=list)
    consumers: list[Rule] = field(default_factory=list)

    def rules(self) -> list[Rule]:
        return self.producers + self.consumers

    def __bool__(self) -> bool:
        return bool(self.producers and self.consumers)


def selection_effect(rule: Rule, selection: Selection) -> tuple:
    """A signature of everything a rewriting of ``(σ, µ)`` depends on.

    Two selections with equal effect produce literally the same rewriting
    rules, so the expansion skips the duplicates before enumeration."""
    covered = covered_atoms(rule, selection)
    covered_set = set(covered)
    remaining = tuple(
        atom for atom in rule.positive_body() if atom not in covered_set
    )
    return (
        frozenset(selection.apply(covered)),
        frozenset(selection.apply(remaining)),
        selection.apply(rule.head),
        keep_set(rule, selection, include_head=True),
        keep_set(rule, selection, include_head=False),
    )


def _interface_name(kind: str, pieces: tuple) -> str:
    digest = hashlib.sha1(repr(pieces).encode()).hexdigest()[:12]
    return f"{INTERFACE_PREFIX}_{kind}_{digest}"


def _annotation_vars(atoms: Sequence[Atom]) -> set[Variable]:
    found: set[Variable] = set()
    for atom in atoms:
        found |= atom.annotation_variables()
    return found


def _interface_annotation(
    removed: Sequence[Atom], remaining: Sequence[Atom], head: Sequence[Atom]
) -> tuple[Variable, ...]:
    flow = _annotation_vars(removed) & (
        _annotation_vars(remaining) | _annotation_vars(head)
    )
    return tuple(sorted(flow, key=lambda v: v.name))


def _max_guard_arity(signature: GuardSignature) -> int:
    return max((key[1] for key in signature), default=0)


def _bag_guard(variables: Sequence[Variable]) -> Atom:
    ordered = tuple(sorted(set(variables), key=lambda v: v.name))
    return Atom(bag_relation(len(ordered)), ordered)


def rc_rewriting(
    rule: Rule,
    selection: Selection,
    signature: GuardSignature,
) -> Optional[RcRncBundle]:
    """The rc-rewriting bundle of a non-guarded Datalog rule w.r.t. ``µ``.

    Returns None when the side conditions fail (no covered atoms, no
    variable of ``µ(cov)`` projected away, or no signature relation wide
    enough to host the guard)."""
    if not rule.is_datalog():
        raise ValueError("rc-rewriting applies to Datalog rules")
    covered = covered_atoms(rule, selection)
    if not covered:
        return None
    covered_set = set(covered)
    remaining = tuple(
        atom for atom in rule.positive_body() if atom not in covered_set
    )
    keep = keep_set(rule, selection)
    mu_cov = selection.apply(covered)
    mu_cov_vars = {v for atom in mu_cov for v in atom.argument_variables()}
    # (b) variable projection: µ(cov) must lose a variable.
    if not any(variable not in keep for variable in mu_cov_vars):
        return None
    guard_vars = mu_cov_vars | set(keep)
    # (a): some relation of Σ must be able to contain every variable of σ′.
    if len(guard_vars) > _max_guard_arity(signature):
        return None

    annotation = _interface_annotation(covered, remaining, rule.head)
    mu_remaining = selection.apply(remaining)
    mu_head = selection.apply(rule.head)
    interface = _interface_name(
        "rc", (frozenset(mu_cov), keep, annotation, frozenset(mu_remaining), mu_head)
    )
    head_atom = Atom(interface, keep, annotation)

    try:
        producer = Rule((_bag_guard(sorted(guard_vars)),) + mu_cov, (head_atom,))
        consumer = Rule((head_atom,) + mu_remaining, mu_head)
    except RuleError:
        return None
    return RcRncBundle("rc", interface, [producer], [consumer])


def rnc_rewriting(
    rule: Rule,
    selection: Selection,
    signature: GuardSignature,
) -> Optional[RcRncBundle]:
    """The rnc-rewriting bundle of a non-guarded Datalog rule w.r.t. ``µ``."""
    if not rule.is_datalog():
        raise ValueError("rnc-rewriting applies to Datalog rules")
    # In the rnc case of the correctness proof the frontier guard maps into
    # the node ``d`` whose terms dom(µ) covers, so every frontier variable
    # is in dom(µ); without this, head variables outside dom(µ) would be
    # constrained only by the consumer's guard — unsound.
    if not rule.argument_frontier() <= selection.domain:
        return None
    covered = covered_atoms(rule, selection)
    covered_set = set(covered)
    remaining = tuple(
        atom for atom in rule.positive_body() if atom not in covered_set
    )
    if not remaining:
        return None
    keep = keep_set(rule, selection, include_head=False)
    # Soundness: every head variable must be bound by µ(cov) or the
    # interface; head variables occurring only in the removed part flow
    # through keep because they occur in body∖cov.
    covered_vars = {v for atom in covered for v in atom.argument_variables()}
    remaining_vars_orig = {
        v for atom in remaining for v in atom.argument_variables()
    }
    for variable in rule.argument_frontier():
        if variable not in covered_vars and variable not in remaining_vars_orig:
            return None
    mu_remaining = selection.apply(remaining)
    mu_remaining_vars = {
        v for atom in mu_remaining for v in atom.argument_variables()
    }
    projection_candidates = sorted(
        (v for v in mu_remaining_vars if v not in keep), key=lambda v: v.name
    )
    # (b): the guard ~x must contain some z ∉ ~y occurring in µ(body∖cov).
    if not projection_candidates:
        return None

    annotation = _interface_annotation(remaining, covered, rule.head)
    mu_cov = selection.apply(covered)
    mu_head = selection.apply(rule.head)
    interface = _interface_name(
        "rnc", (frozenset(mu_remaining), keep, annotation, frozenset(mu_cov), mu_head)
    )
    head_atom = Atom(interface, keep, annotation)

    consumer_vars = (
        set(keep)
        | {v for atom in mu_cov for v in atom.argument_variables()}
        | {v for atom in mu_head for v in atom.argument_variables()}
    )
    max_arity = _max_guard_arity(signature)
    if len(consumer_vars) > max_arity:
        return None

    bundle = RcRncBundle("rnc", interface)
    for candidate in projection_candidates:
        guard_vars = sorted(set(keep) | {candidate}, key=lambda v: v.name)
        if len(guard_vars) > max_arity:
            continue
        try:
            bundle.producers.append(
                Rule((_bag_guard(guard_vars),) + mu_remaining, (head_atom,))
            )
        except RuleError:
            continue
    try:
        bundle.consumers.append(
            Rule(
                (_bag_guard(sorted(consumer_vars)), head_atom) + mu_cov,
                mu_head,
            )
        )
    except RuleError:
        return None
    return bundle if bundle else None
