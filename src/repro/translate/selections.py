"""Selections, covered atoms and keep-sets (Definitions 7–9).

A *selection* for a rule ``σ`` of a normal frontier-guarded theory ``Σ`` is
a partial function ``µ : uvars(σ) ⇀ uvars(σ)`` with ``|ran(µ)| ≤ k``, where
``k`` is the maximal relation arity of ``Σ``.  Its derived notions:

* ``cov(σ, µ)``  — body atoms whose variables all lie in ``dom(µ)``,
* ``keep(σ, µ)`` — the interface: ``µ(x)`` for ``x ∈ dom(µ)`` occurring in
  ``body(σ) \\ cov(σ, µ)`` or in ``head(σ)``.

In the correctness proof a selection arises from a homomorphism ``h`` of
the rule body into a chase tree: ``dom(µ)`` is the set of variables whose
``h``-image lies in the ≤ k terms of the deepest tree node touched, and
``µ`` collapses variables with equal images onto ≤ k representatives.  The
enumerator therefore produces, for every subset ``D ⊆ uvars(σ)``, every
partition of ``D`` into at most ``k`` blocks (each block mapped to its
lexicographically least member) — exactly the selections the proof can
demand, up to renaming.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from ..core.atoms import Atom
from ..core.rules import Rule
from ..core.terms import Variable

__all__ = ["Selection", "covered_atoms", "keep_set", "enumerate_selections"]


@dataclass(frozen=True)
class Selection:
    """A selection ``µ`` — an immutable partial variable mapping."""

    mapping: tuple[tuple[Variable, Variable], ...]

    @classmethod
    def from_dict(cls, mapping: Mapping[Variable, Variable]) -> "Selection":
        return cls(tuple(sorted(mapping.items(), key=lambda kv: kv[0].name)))

    def as_dict(self) -> dict[Variable, Variable]:
        return dict(self.mapping)

    @property
    def domain(self) -> set[Variable]:
        return {source for source, _ in self.mapping}

    @property
    def range(self) -> set[Variable]:
        return {target for _, target in self.mapping}

    def apply_to_atom(self, atom: Atom) -> Atom:
        """``µ(Γ)`` on a single atom — argument *and* annotation positions
        are substituted (annotation variables are never in the domain in
        practice because selections range over argument variables)."""
        return atom.substitute(self.as_dict())

    def apply(self, atoms: Iterable[Atom]) -> tuple[Atom, ...]:
        mapping = self.as_dict()
        return tuple(atom.substitute(mapping) for atom in atoms)

    def key(self) -> tuple:
        return tuple((s.name, t.name) for s, t in self.mapping)

    def __str__(self) -> str:
        pairs = ", ".join(f"{s.name}→{t.name}" for s, t in self.mapping)
        return "{" + pairs + "}"


def covered_atoms(rule: Rule, selection: Selection) -> tuple[Atom, ...]:
    """``cov(σ, µ)`` — body atoms with all argument variables in dom(µ).

    Annotation variables are payload and do not affect coverage."""
    domain = selection.domain
    return tuple(
        atom
        for atom in rule.positive_body()
        if atom.argument_variables() <= domain
    )


def keep_set(
    rule: Rule, selection: Selection, include_head: bool = True
) -> tuple[Variable, ...]:
    """``keep(σ, µ)`` as the globally fixed enumeration ``~y`` (sorted).

    ``include_head=True`` is Definition 9 verbatim (the rc case, where the
    head moves away from the covered atoms and its dom-variables must flow
    through the interface).  For rnc rewritings the head stays with the
    covered atoms, whose variables bind it directly; the interface then
    carries only variables occurring in the *non-covered* part — this is
    what the paper's Example 6 computes (``keep(σ3,µ) = {x}`` although the
    head variable ``z`` is in ``dom(µ)``), and including head variables
    there would force the producer's guard to cover terms that never
    co-occur, losing completeness."""
    covered = set(covered_atoms(rule, selection))
    outside_vars: set[Variable] = set()
    for atom in rule.positive_body():
        if atom not in covered:
            outside_vars |= atom.argument_variables()
    if include_head:
        for atom in rule.head:
            outside_vars |= atom.argument_variables()
    mapping = selection.as_dict()
    kept = {
        mapping[variable]
        for variable in selection.domain
        if variable in outside_vars
    }
    return tuple(sorted(kept, key=lambda v: v.name))


def _partitions_into_blocks(
    items: list[Variable], max_blocks: int
) -> Iterator[list[list[Variable]]]:
    """All set partitions of ``items`` into at most ``max_blocks`` blocks."""
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    for partition in _partitions_into_blocks(rest, max_blocks):
        for index in range(len(partition)):
            updated = [list(block) for block in partition]
            updated[index].append(first)
            yield updated
        if len(partition) < max_blocks:
            yield [[first]] + [list(block) for block in partition]


def enumerate_selections(
    rule: Rule,
    max_range: int,
    *,
    max_domain: int | None = None,
) -> Iterator[Selection]:
    """Enumerate the selections the completeness proof can require.

    For every non-empty subset ``D`` of the rule's argument variables and
    every partition of ``D`` into ≤ ``max_range`` blocks, yield the
    selection mapping each variable to its block's least-named member.
    ``max_domain`` optionally bounds ``|D|`` (a practical safety valve —
    the proof only needs domains of variables mapped into one ≤ k-term
    node and the atoms around it)."""
    argument_vars = sorted(
        {
            variable
            for atom in rule.positive_body()
            for variable in atom.argument_variables()
        },
        key=lambda v: v.name,
    )
    for size in range(1, len(argument_vars) + 1):
        if max_domain is not None and size > max_domain:
            break
        for subset in itertools.combinations(argument_vars, size):
            for partition in _partitions_into_blocks(list(subset), max_range):
                mapping: dict[Variable, Variable] = {}
                for block in partition:
                    representative = min(block, key=lambda v: v.name)
                    for variable in block:
                        mapping[variable] = representative
                yield Selection.from_dict(mapping)
