"""Weakly frontier-guarded → weakly guarded (Section 5.2, Theorem 2).

The three steps of the paper:

  (a) make the theory *proper* (Definition 16) and move terms in
      non-affected positions into relation annotations: ``aΣ`` rewrites
      every atom ``R(t1,…,tn)`` to ``R[t_{i+1},…,t_n](t1,…,ti)`` where
      ``i`` is the last affected position (Definition 17),
  (b) run the frontier-guarded → nearly guarded rewriting of Section 5.1
      on ``a(Σ)``,
  (c) restore annotations into trailing argument positions:
      ``a⁻`` maps ``R[~v](~t)`` to ``R(~t, ~v)`` (Definition 18).

``rew(Σ) = a⁻(rew(a(Σ)))`` is weakly guarded and preserves answers.

**Reproduction note (coherent closure).**  With the literal ``ap(Σ)``, a
*safe* variable can occupy an affected head position (``S(v,w) → R(w,v)``
where only ``(R,1)`` is affected); then ``a(Σ)`` is neither safely
annotated nor frontier-guarded, contradicting the paper's "as easily
seen" step.  We therefore compute annotations w.r.t. the *coherent*
affected-position closure (see
:func:`repro.guardedness.affected.coherent_affected_positions`), a sound
over-approximation under which every rule variable lives wholly on one
side of the cut; theories that stop being weakly frontier-guarded under
the closure are rejected with a clear error.  DESIGN.md discusses this
substitution.

Because step (a) permutes relation positions (properization), the public
entry point returns a :class:`WfgRewriting` bundling the rewritten theory
with the database/atom transformations needed to use it: the caller
permutes the input database into proper form before evaluating.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.atoms import Atom
from ..core.database import Database
from ..core.rules import Rule
from ..core.terms import Constant
from ..core.theory import Theory
from ..guardedness.affected import (
    Position,
    coherent_affected_positions,
)
from ..guardedness.classify import (
    is_frontier_guarded,
    is_weakly_frontier_guarded_rule,
    is_weakly_guarded,
)
from ..guardedness.normalize import normalize
from ..guardedness.proper import ProperForm, make_proper
from ..obs.runtime import span as _obs_span
from ..robustness.errors import TranslationError
from .expansion import rewrite_frontier_guarded

__all__ = [
    "annotate_theory",
    "deannotate_theory",
    "annotate_database",
    "WfgRewriting",
    "rewrite_weakly_frontier_guarded",
    "NotCoherentlyGuardedError",
]


class NotCoherentlyGuardedError(ValueError):
    """The theory is not weakly frontier-guarded under the coherent
    affected-position closure (see module docstring)."""


def _cuts_from_ap(theory: Theory, ap: set[Position]) -> dict[str, int]:
    """For a proper theory: the number of leading affected positions."""
    cuts: dict[str, int] = {}
    for name, arity, _annotation in theory.relation_keys():
        cut = 0
        while cut < arity and (name, cut) in ap:
            cut += 1
        cuts[name] = cut
    return cuts


def _annotate_atom(atom: Atom, cuts: dict[str, int]) -> Atom:
    """``aΣ(R(t1,…,tn)) = R[t_{i+1},…,t_n](t1,…,ti)`` (Definition 17)."""
    if atom.annotation:
        raise ValueError(f"atom already annotated: {atom}")
    cut = cuts.get(atom.relation, 0)
    return Atom(atom.relation, atom.args[:cut], atom.args[cut:])


def _convert_rule(rule: Rule, convert) -> Rule:
    body = tuple(
        literal.__class__(convert(literal.atom))
        if hasattr(literal, "atom")
        else convert(literal)
        for literal in rule.body
    )
    head = tuple(convert(atom) for atom in rule.head)
    return Rule(body, head, rule.exist_vars)


def annotate_theory(
    theory: Theory, ap: Optional[set[Position]] = None
) -> Theory:
    """``a(Σ)`` for a proper theory, w.r.t. the given (default: coherent)
    affected-position set."""
    if ap is None:
        ap = coherent_affected_positions(theory)
    cuts = _cuts_from_ap(theory, ap)
    return Theory(
        _convert_rule(rule, lambda atom: _annotate_atom(atom, cuts))
        for rule in theory
    )


def annotate_database(
    database: Database, theory: Theory, ap: Optional[set[Position]] = None
) -> Database:
    """``aΣ(D)`` — annotate database atoms the same way as the theory."""
    if ap is None:
        ap = coherent_affected_positions(theory)
    cuts = _cuts_from_ap(theory, ap)
    result = Database(
        (_annotate_atom(atom, cuts) for atom in database), freeze_acdom=False
    )
    if database.acdom_frozen:
        result.freeze_acdom()
    return result


def _deannotate_atom(atom: Atom) -> Atom:
    """``a⁻``: ``R[~v](~t) → R(~t, ~v)`` (Definition 18)."""
    return Atom(atom.relation, atom.args + atom.annotation)


def deannotate_theory(theory: Theory) -> Theory:
    return Theory(
        _convert_rule(rule, _deannotate_atom) for rule in theory
    )


def deannotate_database(database: Database) -> Database:
    result = Database(
        (_deannotate_atom(atom) for atom in database), freeze_acdom=False
    )
    if database.acdom_frozen:
        result.freeze_acdom()
    return result


@dataclass
class WfgRewriting:
    """The result of Theorem 2's translation.

    ``theory`` is the weakly guarded ``rew(Σ)`` over the *proper* relation
    order; use :meth:`prepare_database` on inputs and query the original
    output relation — answer tuples come back in proper argument order,
    which :meth:`restore_answer` undoes."""

    theory: Theory
    proper_form: ProperForm

    def prepare_database(self, database: Database) -> Database:
        return self.proper_form.apply_to_database(database)

    def restore_answer_atom(self, atom: Atom) -> Atom:
        return self.proper_form.undo_on_atom(atom)

    def restore_answer(
        self, relation: str, answer: tuple[Constant, ...]
    ) -> tuple[Constant, ...]:
        restored = self.proper_form.undo_on_atom(Atom(relation, answer))
        return tuple(restored.args)  # type: ignore[return-value]


def rewrite_weakly_frontier_guarded(
    theory: Theory,
    *,
    max_rules: int = 100_000,
    max_selection_domain: Optional[int] = None,
) -> WfgRewriting:
    """Theorem 2: ``rew(Σ) = a⁻(rew(a(Σ)))`` for a weakly frontier-guarded
    theory; the result is weakly guarded and preserves answers on every
    (properized) database.

    The input is normalized internally (Proposition 1)."""
    with _obs_span("translate.rewrite_wfg", rules=len(theory)):
        return _rewrite_weakly_frontier_guarded(
            theory,
            max_rules=max_rules,
            max_selection_domain=max_selection_domain,
        )


def _rewrite_weakly_frontier_guarded(
    theory: Theory,
    *,
    max_rules: int,
    max_selection_domain: Optional[int],
) -> WfgRewriting:
    normal = normalize(theory).theory
    ap = coherent_affected_positions(normal)
    for rule in normal:
        if not is_weakly_frontier_guarded_rule(rule, normal, ap):
            raise NotCoherentlyGuardedError(
                "rule is not weakly frontier-guarded under the coherent "
                f"affected-position closure: {rule}"
            )
    proper_form = make_proper(normal, ap)
    proper_ap = {
        (name, permutation_index)
        for (name, original_index) in ap
        for permutation_index, source in enumerate(
            proper_form.permutations.get(
                name, tuple(range(_arity_of(normal, name)))
            )
        )
        if source == original_index
    }
    annotated = annotate_theory(proper_form.theory, proper_ap)
    if not is_frontier_guarded(annotated):
        raise TranslationError(
            "a(Σ) must be frontier-guarded under the coherent closure"
        )
    rewritten = rewrite_frontier_guarded(
        annotated,
        max_rules=max_rules,
        max_selection_domain=max_selection_domain,
    )
    final = deannotate_theory(rewritten)
    if not is_weakly_guarded(final):
        raise TranslationError("rew(Σ) must be weakly guarded (Theorem 2)")
    return WfgRewriting(theory=final, proper_form=proper_form)


def _arity_of(theory: Theory, relation: str) -> int:
    for name, arity, _annotation in theory.relation_keys():
        if name == relation:
            return arity
    raise KeyError(relation)
