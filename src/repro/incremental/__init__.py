"""repro.incremental — delta maintenance and streaming updates.

Maintains materialized models (Datalog fixpoints and terminating chase
instances) under ``insert``/``retract`` fact batches in time
proportional to the delta.  See :mod:`repro.incremental.engine` for the
maintenance algorithms and the fallback contract.
"""

from .engine import (
    ChaseLiveModel,
    LiveModel,
    RecomputeLiveModel,
    UpdateStats,
    incremental_stats,
)

__all__ = [
    "ChaseLiveModel",
    "LiveModel",
    "RecomputeLiveModel",
    "UpdateStats",
    "incremental_stats",
]
