"""Delta maintenance of materialized models (the ``repro.incremental`` core).

A :class:`LiveModel` owns a materialized Datalog fixpoint and absorbs
``insert``/``retract`` fact batches in time proportional to the delta
instead of the database:

* **Counting path** (negation-free stratified programs on the columnar
  store): extensional rows carry an EDB flag in the store's
  ordinal-aligned bookkeeping (:meth:`ColumnRelation.ensure_counts`),
  and deletion decisions are made by *exact recounts* — for a candidate
  row the engine binds the head variables of every defining rule and
  asks the compiled adorned join plan whether any body assignment
  survives.  Counts are never incremented through delta-pinned joins:
  a derivation using two delta facts would be discovered once per
  pinned index, and drifting counts silently keep unsupported facts.
* **DRed-style delete** (overdelete → rederive → propagate) for the
  recursive case: the overdelete closure is computed *before* any
  physical removal by pinning the compiled all-rows rule executors
  (:func:`~repro.core.plan.derive_rule_rows_all`) on the deleted rows
  against the still-intact model — forced rows match literally whether
  or not they are present, so later closure rounds keep working after
  rows are conceptually gone.  Rederivation then recounts each removed
  row against the surviving model and semi-naive insert propagation
  restores the rest; cyclically-supported garbage stays dead because
  the whole cycle is overdeleted and no recount finds outside support.
* **Delta-restricted chase** (:class:`ChaseLiveModel`) for existential
  theories the advisor proved terminating: insert-only batches resume
  the restricted chase from the old fixpoint
  (:func:`repro.chase.runner.extend_chase`); any retraction may touch a
  null-introducing derivation, so it falls back to a full recompute —
  reported in the update stats, never silent.

Programs with negation, programs reading ``ACDom`` (inserts can grow
the active domain), and dict-store databases likewise run in reported
recompute mode.  Every path leaves the model equal to a from-scratch
evaluation of the post-update database — the Hypothesis differential
suite asserts exactly that.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..core.atoms import Atom, RelationKey
from ..core.database import Database
from ..core.plan import (
    cached_plan,
    derive_rule_rows,
    derive_rule_rows_all,
    execute_plan,
)
from ..core.store import ColumnDelta
from ..core.terms import Constant, Term, Variable
from ..core.theory import ACDOM, Theory
from ..chase.runner import (
    RESTRICTED,
    ChaseBudget,
    chase as run_chase,
    extend_chase,
)
from ..datalog.engine import evaluate
from ..datalog.stratification import Stratification, stratify
from ..obs.runtime import current as _obs_current
from ..robustness.errors import exhausted_error

__all__ = [
    "LiveModel",
    "ChaseLiveModel",
    "RecomputeLiveModel",
    "UpdateStats",
    "incremental_stats",
]

#: Process-lifetime counters, mirroring ``plan._stats`` — the worker
#: pool reads them as before/after deltas per job.
_stats = {
    "updates": 0,
    "inserted": 0,
    "retracted": 0,
    "derived_added": 0,
    "derived_removed": 0,
    "overdeleted": 0,
    "rederived": 0,
    "fallbacks": 0,
}


def incremental_stats() -> dict[str, int]:
    """Lifetime incremental-maintenance counters (process-global)."""
    return dict(_stats)


@dataclass
class UpdateStats:
    """What one ``apply`` did, including whether it fell back.

    ``mode`` is the path actually taken (``counting``, ``chase_delta``
    or ``recompute``); ``fallback`` carries the reason whenever the
    maintenance ran as a full recompute.  ``delta_size`` is the total
    number of rows that changed (extensional and derived)."""

    mode: str = "counting"
    inserted: int = 0
    retracted: int = 0
    derived_added: int = 0
    derived_removed: int = 0
    overdeleted: int = 0
    rederived: int = 0
    fallback: Optional[str] = None
    phase_ms: dict[str, float] = field(default_factory=dict)

    @property
    def delta_size(self) -> int:
        return (
            self.inserted
            + self.retracted
            + self.derived_added
            + self.derived_removed
        )

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "inserted": self.inserted,
            "retracted": self.retracted,
            "derived_added": self.derived_added,
            "derived_removed": self.derived_removed,
            "overdeleted": self.overdeleted,
            "rederived": self.rederived,
            "delta_size": self.delta_size,
            "fallback": self.fallback,
        }


def _datalog_fallback_reason(program: Theory, columnar: bool) -> Optional[str]:
    """Why a program cannot take the counting path (``None`` = it can)."""
    if not columnar:
        return "dict_store"
    if any(rule.has_negation() for rule in program):
        return "negation"
    for rule in program:
        for atom in rule.positive_body():
            if atom.relation == ACDOM:
                return "acdom"
        for atom in rule.head:
            if atom.relation == ACDOM:
                return "acdom"
    return None


def _unfreeze_acdom(database: Database) -> None:
    """Let the active domain track the live extensional facts.

    A maintained input database must hash and evaluate exactly like a
    freshly parsed copy of its current contents, so the frozen-at-parse
    ACDom extension is released; engines re-freeze their own copies at
    evaluation time, which reproduces from-scratch semantics.
    """
    database._acdom = None
    database._acdom_sorted = None
    if database._columnar:
        database._acdom_ids = None
        database._acdom_ids_sorted = None


def _model_answers(model: Database, output: str) -> set[tuple[Constant, ...]]:
    answers: set[tuple[Constant, ...]] = set()
    for key in model.relations():
        if key[0] != output:
            continue
        for atom in model.atoms_for(key):
            if all(isinstance(term, Constant) for term in atom.args):
                answers.add(tuple(atom.args))  # type: ignore[arg-type]
    return answers


class LiveModel:
    """A Datalog fixpoint maintained under insert/retract batches.

    ``program`` must be stratified Datalog; ``database`` is the input
    (extensional) instance, copied and owned by the model.  The model
    is built once with the batch engine, then updated in place by
    :meth:`apply`.
    """

    kind = "datalog"

    def __init__(
        self,
        program: Theory,
        database: Database,
        *,
        stratification: Optional[Stratification] = None,
        model: Optional[Database] = None,
    ) -> None:
        self.program = program
        self.stratification = stratification or stratify(program)
        self.edb = database.copy()
        _unfreeze_acdom(self.edb)
        self.fallback_reason = _datalog_fallback_reason(
            program, self.edb._columnar
        )
        self.mode = "counting" if self.fallback_reason is None else "recompute"
        # ``model`` lets a caller adopt an existing materialization (a
        # cached or snapshot-loaded fixpoint) instead of re-evaluating;
        # it must equal ``evaluate(program, database)`` and ownership
        # transfers to the live model (updates mutate it in place).
        self.model = (
            model
            if model is not None
            else evaluate(program, self.edb, stratification=self.stratification)
        )
        #: head relation key -> [(head atom, body)] across the program,
        #: for the exact-recount derivability probe.
        self._head_index: dict[RelationKey, list] = {}
        #: head relation name -> index of its defining stratum.
        self._stratum_of: dict[str, int] = {}
        for index, stratum in enumerate(self.stratification):
            for rule in stratum:
                body = tuple(rule.positive_body())
                for atom in rule.head:
                    self._head_index.setdefault(atom.relation_key, []).append(
                        (atom, body)
                    )
                    self._stratum_of[atom.relation] = index
        if self.mode == "counting":
            self._adopt_counts()

    # ------------------------------------------------------------------
    # adoption
    # ------------------------------------------------------------------
    def _adopt_counts(self) -> None:
        """Mark every extensional row in the model's EDB bitmap."""
        model = self.model
        for relation in model._relations.values():
            relation.ensure_counts()
        ids = model._symtab._ids
        for atom in self.edb:
            relation = model._relations[atom.relation_key]
            row = tuple(ids[term] for term in atom.all_terms)
            ordinal = relation.ordinal_of(row)
            assert ordinal >= 0, "model must contain every extensional fact"
            relation.edb[ordinal] = 1

    # ------------------------------------------------------------------
    # public surface
    # ------------------------------------------------------------------
    def answers(self, output: str) -> set[tuple[Constant, ...]]:
        """All-constant tuples of the output relation in the model."""
        return _model_answers(self.model, output)

    def apply(
        self,
        inserts: Iterable[Atom] = (),
        retracts: Iterable[Atom] = (),
    ) -> UpdateStats:
        """Absorb one batch of extensional inserts and retracts.

        Retracts are applied first, then inserts (a batch containing
        both behaves as two consecutive updates).  Returns the update
        statistics; the model afterwards equals a from-scratch
        evaluation of the updated input database.
        """
        obs = _obs_current()
        span = (
            obs.span("incremental.update", kind=self.kind, mode=self.mode)
            if obs is not None
            else nullcontext()
        )
        with span:
            if self.mode == "recompute":
                stats = self._apply_recompute(
                    inserts, retracts, self.fallback_reason or "recompute"
                )
            else:
                stats = self._apply_counting(inserts, retracts, obs)
        self._account(stats, obs)
        return stats

    def _account(self, stats: UpdateStats, obs) -> None:
        _stats["updates"] += 1
        _stats["inserted"] += stats.inserted
        _stats["retracted"] += stats.retracted
        _stats["derived_added"] += stats.derived_added
        _stats["derived_removed"] += stats.derived_removed
        _stats["overdeleted"] += stats.overdeleted
        _stats["rederived"] += stats.rederived
        if stats.fallback is not None:
            _stats["fallbacks"] += 1
        if obs is not None:
            obs.observe("incremental.delta_size", stats.delta_size)
            if stats.rederived:
                obs.inc("incremental.rederived", stats.rederived)
            if stats.fallback is not None:
                obs.inc("incremental.fallbacks")

    # ------------------------------------------------------------------
    # recompute fallback
    # ------------------------------------------------------------------
    def _apply_recompute(
        self, inserts, retracts, reason: str
    ) -> UpdateStats:
        stats = UpdateStats(mode="recompute", fallback=reason)
        old_size = len(self.model)
        for atom in retracts:
            if self.edb.remove(atom):
                stats.retracted += 1
        for atom in inserts:
            if self.edb.add(atom):
                stats.inserted += 1
        self.model = evaluate(
            self.program, self.edb, stratification=self.stratification
        )
        grown = len(self.model) - old_size
        if grown >= 0:
            stats.derived_added = grown
        else:
            stats.derived_removed = -grown
        return stats

    # ------------------------------------------------------------------
    # counting / DRed maintenance
    # ------------------------------------------------------------------
    def _apply_counting(self, inserts, retracts, obs) -> UpdateStats:
        stats = UpdateStats(mode="counting")
        model = self.model
        ids = model._symtab._ids

        # -- retract batch --------------------------------------------
        seed: dict[RelationKey, set[tuple[int, ...]]] = {}
        for atom in retracts:
            if not self.edb.remove(atom):
                continue  # not an extensional fact; nothing to retract
            stats.retracted += 1
            key = atom.relation_key
            relation = model._relations[key]
            relation.ensure_counts()
            row = tuple(ids[term] for term in atom.all_terms)
            ordinal = relation.ordinal_of(row)
            relation.edb[ordinal] = 0
            seed.setdefault(key, set()).add(row)
        if seed:
            self._delete(seed, stats, obs)

        # -- insert batch ---------------------------------------------
        fresh: dict[RelationKey, list[tuple[int, ...]]] = {}
        for atom in inserts:
            if not self.edb.add(atom):
                continue  # duplicate extensional insert
            stats.inserted += 1
            key = atom.relation_key
            was_new = model.add(atom)
            relation = model._relations[key]
            relation.ensure_counts()
            row = tuple(ids[term] for term in atom.all_terms)
            if was_new:
                ordinal = relation.n_rows - 1
                fresh.setdefault(key, []).append(row)
            else:
                # Already derived: it merely gains extensional status.
                ordinal = relation.ordinal_of(row)
            relation.edb[ordinal] = 1
        if fresh:
            self._insert_propagate(fresh, stats, obs)
        return stats

    # -- deletion: overdelete → physical removal → rederive/propagate --
    def _delete(self, seed, stats: UpdateStats, obs) -> None:
        model = self.model
        span = (
            obs.span("incremental.overdelete") if obs is not None else nullcontext()
        )
        with span:
            deleted: dict[RelationKey, set[tuple[int, ...]]] = {
                key: set(rows) for key, rows in seed.items()
            }
            # Overdelete closure, computed against the *intact* model:
            # forced rows match literally whether present or not, and
            # other body atoms still see conceptually-deleted partners —
            # the standard DRed over-approximation.
            for stratum in self.stratification:
                bodies = [tuple(rule.positive_body()) for rule in stratum]
                heads = [tuple(rule.head) for rule in stratum]
                pending = {key: rows for key, rows in deleted.items()}
                while pending:
                    found: dict = {}
                    for body, rule_heads in zip(bodies, heads):
                        for index, atom in enumerate(body):
                            rows = pending.get(atom.relation_key)
                            if not rows:
                                continue
                            derive_rule_rows_all(
                                body,
                                rule_heads,
                                model,
                                (index, [ColumnDelta(atom.relation_key, list(rows))]),
                                found,
                            )
                    next_pending: dict = {}
                    for key, rows in found.items():
                        relation = model._relations.get(key)
                        if relation is None or relation.n_rows == 0:
                            continue
                        relation.ensure_counts()
                        rowset = relation._rowset
                        if rowset is None:
                            rowset = relation._build_rowset()
                        already = deleted.get(key, set())
                        over: set[tuple[int, ...]] = set()
                        for row in rows:
                            if row in already or row not in rowset:
                                continue
                            if relation.edb[relation.ordinal_of(row)]:
                                continue  # extensional support survives
                            over.add(row)
                        if over:
                            deleted.setdefault(key, set()).update(over)
                            next_pending[key] = over
                            stats.overdeleted += len(over)
                    pending = next_pending

            # Physical removal (compaction) of retracted ∪ overdeleted.
            removed_total = 0
            for key, rows in deleted.items():
                removed_total += model._remove_rows(key, rows)

        # Rederive + propagate, bottom-up so recounts only ever consult
        # final lower strata.
        span = (
            obs.span("incremental.rederive") if obs is not None else nullcontext()
        )
        with span:
            restored = 0
            for index, stratum in enumerate(self.stratification):
                frontier: dict[RelationKey, list[tuple[int, ...]]] = {}
                for key, rows in deleted.items():
                    if self._stratum_of.get(key[0]) != index:
                        continue
                    relation = model._relations.get(key)
                    for row in sorted(rows):
                        supports = self._recount(key, row)
                        if not supports:
                            continue
                        model._add_row(key, row)
                        relation.ensure_counts()
                        relation.supports[relation.n_rows - 1] = supports
                        restored += 1
                        frontier.setdefault(key, []).append(row)
                if frontier:
                    restored += self._propagate_stratum(stratum, frontier, stats)
            stats.rederived += restored
            # Net derived rows gone from the model: everything removed
            # except the retracted base facts and whatever came back.
            stats.derived_removed += max(
                0, removed_total - stats.retracted - restored
            )

    def _recount(self, key: RelationKey, row: tuple[int, ...]) -> int:
        """The number of rule templates with at least one surviving
        derivation of ``row`` — the exact-recount support probe.

        Binds the defining rule's head variables to the row's terms and
        asks the compiled adorned plan for one witness assignment; the
        probe is per-row, so deletion cost tracks the delta, not the
        database.  Stored in the row's ``supports`` slot as bookkeeping
        (the authoritative deletion decision is this recount itself).
        """
        entries = self._head_index.get(key)
        if not entries:
            return 0
        model = self.model
        terms = model._symtab._terms
        decoded = tuple(terms[i] for i in row)
        supports = 0
        for head_atom, body in entries:
            binding: dict[Variable, Term] = {}
            matched = True
            for position, term in enumerate(head_atom.all_terms):
                value = decoded[position]
                if isinstance(term, Variable):
                    bound = binding.get(term)
                    if bound is None:
                        binding[term] = value
                    elif bound != value:
                        matched = False
                        break
                elif term != value:
                    matched = False
                    break
            if not matched:
                continue
            plan = cached_plan(body, frozenset(binding), None)
            witness = next(
                iter(execute_plan(plan, model, partial=binding)), None
            )
            if witness is not None:
                supports += 1
        return supports

    # -- insertion: semi-naive propagation stratum by stratum ----------
    def _insert_propagate(self, fresh, stats: UpdateStats, obs) -> None:
        span = (
            obs.span("incremental.propagate") if obs is not None else nullcontext()
        )
        with span:
            # ``accumulated`` carries every new row seen so far (the
            # extensional inserts plus additions from lower strata); each
            # stratum's first round pins on all of it, later rounds only
            # on the stratum's own newly derived rows.
            accumulated: dict[RelationKey, list[tuple[int, ...]]] = {
                key: list(rows) for key, rows in fresh.items()
            }
            for stratum in self.stratification:
                added = self._propagate_stratum(
                    stratum, accumulated, stats, collector=accumulated
                )
                stats.derived_added += added

    def _propagate_stratum(
        self,
        stratum: Theory,
        frontier: dict,
        stats: UpdateStats,
        collector: Optional[dict] = None,
    ) -> int:
        """Semi-naive insert propagation of ``frontier`` through one
        stratum's rules; the frontier rows must already be present in
        the model.  Returns the number of rows added; ``collector``
        (when given) also receives them, keyed by relation."""
        model = self.model
        bodies = [tuple(rule.positive_body()) for rule in stratum]
        heads = [tuple(rule.head) for rule in stratum]
        delta = frontier
        total = 0
        while delta:
            staged: dict = {}
            for body, rule_heads in zip(bodies, heads):
                for index, atom in enumerate(body):
                    rows = delta.get(atom.relation_key)
                    if not rows:
                        continue
                    derive_rule_rows(
                        body,
                        rule_heads,
                        model,
                        (index, [ColumnDelta(atom.relation_key, list(rows))]),
                        staged,
                    )
            next_delta: dict = {}
            for key, rows in staged.items():
                added = [row for row in sorted(rows) if model._add_row(key, row)]
                if not added:
                    continue
                model._relations[key].ensure_counts()
                total += len(added)
                next_delta[key] = added
                if collector is not None:
                    collector.setdefault(key, []).extend(added)
            delta = next_delta
        return total


class RecomputeLiveModel:
    """The reported-fallback live model: every update re-materializes.

    Used where no delta-maintenance algorithm applies (the WFG pipeline,
    whose partial grounding is database-dependent) but the service still
    needs the live-database bookkeeping — an owned extensional instance,
    a current model, and honest :class:`UpdateStats` whose ``fallback``
    names why each update cost a full recompute."""

    kind = "recompute"

    def __init__(
        self,
        materialize,
        database: Database,
        *,
        reason: str,
        model: Optional[Database] = None,
    ) -> None:
        self._materialize = materialize
        self.fallback_reason = reason
        self.mode = "recompute"
        self.edb = database.copy()
        _unfreeze_acdom(self.edb)
        self.model = model if model is not None else materialize(self.edb)

    def answers(self, output: str) -> set[tuple[Constant, ...]]:
        return _model_answers(self.model, output)

    def apply(
        self,
        inserts: Iterable[Atom] = (),
        retracts: Iterable[Atom] = (),
    ) -> UpdateStats:
        obs = _obs_current()
        span = (
            obs.span("incremental.update", kind=self.kind, mode=self.mode)
            if obs is not None
            else nullcontext()
        )
        with span:
            stats = UpdateStats(mode="recompute", fallback=self.fallback_reason)
            old_size = len(self.model)
            for atom in retracts:
                if self.edb.remove(atom):
                    stats.retracted += 1
            for atom in inserts:
                if self.edb.add(atom):
                    stats.inserted += 1
            self.model = self._materialize(self.edb)
            grown = len(self.model) - old_size
            if grown >= 0:
                stats.derived_added = grown
            else:
                stats.derived_removed = -grown
        _stats["updates"] += 1
        _stats["inserted"] += stats.inserted
        _stats["retracted"] += stats.retracted
        _stats["derived_added"] += stats.derived_added
        _stats["derived_removed"] += stats.derived_removed
        _stats["fallbacks"] += 1
        if obs is not None:
            obs.observe("incremental.delta_size", stats.delta_size)
            obs.inc("incremental.fallbacks")
        return stats


class ChaseLiveModel:
    """A chase fixpoint maintained under insert batches.

    Built for existential theories the strategy advisor proved
    terminating.  Insert-only updates resume the restricted chase from
    the previous fixpoint; a retraction may touch a null-introducing
    derivation, so any retraction (and any theory reading ``ACDom``)
    triggers a reported full-recompute fallback.
    """

    kind = "chase"

    def __init__(
        self,
        theory: Theory,
        database: Database,
        *,
        policy: str = RESTRICTED,
        budget: Optional[ChaseBudget] = None,
        model: Optional[Database] = None,
    ) -> None:
        self.theory = theory
        self.policy = policy
        self.budget = budget or ChaseBudget()
        self.edb = database.copy()
        _unfreeze_acdom(self.edb)
        self.fallback_reason = (
            "acdom" if ACDOM in theory.relations() else None
        )
        # ``model`` adopts an existing *complete* chase instance (a
        # cached or snapshot-loaded materialization) instead of
        # re-chasing; ownership transfers to the live model.
        self.model = model if model is not None else self._full_chase()

    def _full_chase(self) -> Database:
        result = run_chase(
            self.theory, self.edb, policy=self.policy, budget=self.budget
        )
        if not result.complete:
            reason = result.truncated_reason or "budget"
            raise exhausted_error(
                reason, f"incremental chase exhausted ({reason})", None
            )
        return result.database

    def answers(self, output: str) -> set[tuple[Constant, ...]]:
        return _model_answers(self.model, output)

    def apply(
        self,
        inserts: Iterable[Atom] = (),
        retracts: Iterable[Atom] = (),
    ) -> UpdateStats:
        obs = _obs_current()
        span = (
            obs.span("incremental.update", kind=self.kind)
            if obs is not None
            else nullcontext()
        )
        with span:
            stats = UpdateStats(mode="chase_delta")
            old_size = len(self.model)
            for atom in retracts:
                if self.edb.remove(atom):
                    stats.retracted += 1
            applied: list[Atom] = []
            for atom in inserts:
                if self.edb.add(atom):
                    stats.inserted += 1
                    applied.append(atom)
            if stats.retracted or self.fallback_reason is not None:
                stats.mode = "recompute"
                stats.fallback = self.fallback_reason or (
                    "existential_retraction"
                )
                self.model = self._full_chase()
            elif applied:
                chase_span = (
                    obs.span("incremental.chase_delta")
                    if obs is not None
                    else nullcontext()
                )
                with chase_span:
                    result = extend_chase(
                        self.theory,
                        self.model,
                        applied,
                        policy=self.policy,
                        budget=self.budget,
                    )
                if not result.complete:
                    reason = result.truncated_reason or "budget"
                    raise exhausted_error(
                        reason,
                        f"incremental chase exhausted ({reason})",
                        None,
                    )
                self.model = result.database
            grown = len(self.model) - old_size
            if grown >= 0:
                stats.derived_added = max(0, grown - stats.inserted)
            else:
                stats.derived_removed = -grown
        _stats["updates"] += 1
        _stats["inserted"] += stats.inserted
        _stats["retracted"] += stats.retracted
        _stats["derived_added"] += stats.derived_added
        _stats["derived_removed"] += stats.derived_removed
        if stats.fallback is not None:
            _stats["fallbacks"] += 1
        if obs is not None:
            obs.observe("incremental.delta_size", stats.delta_size)
            if stats.fallback is not None:
                obs.inc("incremental.fallbacks")
        return stats
