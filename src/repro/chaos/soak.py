"""The soak harness behind ``repro soak``.

A soak run is a closed loop around a *live* server: seeded mixed traffic
(register / query / status / ping, built from
:mod:`repro.bench.generators`) travels through the fault-injection proxy
of :mod:`repro.chaos.proxy` to a ``repro serve`` process started with
``--allow-faults``, while a deterministic share of queries additionally
carries worker-side ``inject: "crash"`` faults.  Everything random is a
pure function of the seed (SHA-256-derived RNGs, one per concern), so a
failing run replays exactly.

What makes it a *test* rather than noise is the invariant set, checked
against ground truth computed in-process before any socket is touched:

``terminal_outcome``
    Every issued request reaches exactly one terminal outcome — a
    structured response (``ok``, partial, shed, typed error) or a typed
    client exception.  No hangs, no double answers, no raw tracebacks.
``sound_answers``
    Every ``ok`` query response is checked against the workload's
    ground truth: complete answers must equal it, partial answers must
    be a subset (the Outcome soundness contract, end to end through
    every injected fault).
``phase_sums``
    For traces held by the flight recorder, the per-phase durations sum
    to the recorded elapsed time (within rounding), and ``/metrics``
    parses as valid Prometheus exposition.
``registry_cache``
    A budget-truncated query over a closure-heavy theory must *not*
    poison the materialization cache: the same query re-run with a full
    budget must return the complete ground truth.
``clean_drain``
    SIGTERM ends the spawned server with exit code 0 and zero orphaned
    worker processes (skipped when soaking an externally managed server
    via ``connect``).

The report (``run_soak`` return value / ``--report`` JSON) embeds the
schedule preview — the first decisions of the proxy schedule and the
traffic plan — which is byte-for-byte identical across runs with the
same seed and fault set.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from ..bench.generators import (
    chain_database,
    random_database,
    random_datalog_theory,
    random_signature,
)
from ..chase.runner import ChaseBudget, try_certain_answers
from ..core.parser import render_theory
from ..core.theory import Query
from ..robustness.errors import InvalidRequestError
from ..service.client import (
    RetryPolicy,
    ServiceClient,
    ServiceUnavailable,
    TransportError,
    fetch_trace,
    http_get,
    wait_until_ready,
)
from .proxy import PROXY_FAULT_ACTIONS, ChaosProxy, ChaosSchedule, derive_rng

__all__ = ["SoakConfig", "SoakWorkload", "run_soak", "build_workloads"]

#: Fault names ``--faults`` accepts: worker-side actions are injected in
#: request payloads (the server must run ``--allow-faults``); the rest
#: are transport faults applied by the proxy.
WORKER_SOAK_FAULTS = ("crash",)
SOAK_FAULTS = WORKER_SOAK_FAULTS + PROXY_FAULT_ACTIONS

#: Entries of the deterministic schedule/traffic previews embedded in
#: the report — the replayability witness.
PREVIEW_ENTRIES = 48

#: The registry-cache probe: transitive closure over a chain forces a
#: deep materialization, so a truncated run is visibly incomplete.
PROBE_THEORY = "E(x,y), E(y,z) -> E(x,z)\nE(x,y) -> R(x,y)"
PROBE_CHAIN = 24
PROBE_OUTPUT = "R"
PROBE_TRUNCATED_STEPS = 40


@dataclass(frozen=True)
class SoakConfig:
    """Everything ``repro soak`` can tune (defaults match the CI job)."""

    seed: int = 7
    duration: float = 30.0
    faults: tuple[str, ...] = ("crash", "delay", "truncate", "stall")
    workers: int = 2
    fault_rate: float = 0.2
    #: ``(query_port, ops_port)`` of an externally managed server; when
    #: ``None`` the harness spawns its own ``repro serve --allow-faults``.
    connect: Optional[tuple[int, int]] = None
    host: str = "127.0.0.1"
    #: Engine deadline carried by each soak query.
    query_timeout: float = 5.0
    #: Client socket timeout (must undercut the proxy's stall hold).
    client_timeout: float = 2.0

    def split_faults(self) -> tuple[tuple[str, ...], tuple[str, ...]]:
        worker = tuple(f for f in self.faults if f in WORKER_SOAK_FAULTS)
        transport = tuple(f for f in self.faults if f in PROXY_FAULT_ACTIONS)
        unknown = [f for f in self.faults if f not in SOAK_FAULTS]
        if unknown:
            raise InvalidRequestError(
                f"unknown soak fault(s) {unknown}; expected members of "
                f"{SOAK_FAULTS}"
            )
        return worker, transport


@dataclass
class SoakWorkload:
    """One theory+database pair with its precomputed ground truth."""

    name: str
    theory_text: str
    database_text: str
    output: str
    #: Sorted complete certain answers, as the wire renders them.
    ground_truth: list[list[str]] = field(default_factory=list)


def _render_database(database) -> str:
    return "\n".join(
        f"{atom.relation}({', '.join(term.name for term in atom.args)})."
        for atom in sorted(database, key=str)
    )


def _wire_answers(outcome_value) -> list[list[str]]:
    return sorted([term.name for term in answer] for answer in outcome_value)


def build_workloads(seed: int) -> list[SoakWorkload]:
    """Deterministic soak workloads: two seeded Datalog worlds plus the
    closure probe — each with in-process ground truth (the oracle every
    served answer is checked against)."""
    workloads: list[SoakWorkload] = []
    for variant in range(2):
        rng = derive_rng(seed, "workload", variant)
        signature = random_signature(rng, n_relations=3, max_arity=2)
        theory = random_datalog_theory(rng, signature, n_rules=4)
        database = random_database(rng, signature, n_constants=5, n_atoms=10)
        output = signature.relations()[rng.randrange(len(signature.relations()))]
        outcome = try_certain_answers(
            Query(theory, output), database, budget=ChaseBudget(max_steps=500_000)
        )
        assert outcome.complete, "workload ground truth must be complete"
        workloads.append(
            SoakWorkload(
                name=f"datalog-{variant}",
                theory_text=render_theory(theory),
                database_text=_render_database(database),
                output=output,
                ground_truth=_wire_answers(outcome.value),
            )
        )
    probe_db = chain_database("E", PROBE_CHAIN)
    from ..core.parser import parse_theory

    probe_outcome = try_certain_answers(
        Query(parse_theory(PROBE_THEORY), PROBE_OUTPUT),
        probe_db,
        budget=ChaseBudget(max_steps=500_000),
    )
    assert probe_outcome.complete
    workloads.append(
        SoakWorkload(
            name="closure-probe",
            theory_text=PROBE_THEORY,
            database_text=_render_database(probe_db),
            output=PROBE_OUTPUT,
            ground_truth=_wire_answers(probe_outcome.value),
        )
    )
    return workloads


def plan_request(
    seed: int, index: int, *, n_workloads: int, worker_faults: tuple[str, ...],
    fault_rate: float,
) -> dict:
    """The ``index``-th traffic decision — pure in its arguments, so the
    plan preview in the report replays byte-for-byte from the seed."""
    rng = derive_rng(seed, "traffic", index)
    roll = rng.random()
    if roll < 0.06:
        return {"index": index, "op": "ping"}
    if roll < 0.16:
        return {"index": index, "op": "status"}
    workload = rng.randrange(n_workloads)
    if roll < 0.28:
        return {"index": index, "op": "register", "workload": workload}
    plan = {"index": index, "op": "query", "workload": workload}
    if worker_faults and rng.random() < fault_rate:
        plan["inject"] = worker_faults[rng.randrange(len(worker_faults))]
    return plan


# ----------------------------------------------------------------------
def _spawn_server(config: SoakConfig) -> tuple[subprocess.Popen, int, int]:
    """``repro serve --allow-faults`` on ephemeral ports, ready to query."""
    def free_port() -> int:
        with socket.socket() as sock:
            sock.bind((config.host, 0))
            return sock.getsockname()[1]

    port, http_port = free_port(), free_port()
    src_root = Path(__file__).resolve().parents[2]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(src_root) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--allow-faults",
            "--workers", str(config.workers),
            "--host", config.host,
            "--port", str(port),
            "--http-port", str(http_port),
            "--default-timeout", "10",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )
    try:
        wait_until_ready(config.host, port, timeout=60)
    except Exception:
        proc.kill()
        proc.wait(timeout=10)
        raise
    return proc, port, http_port


def _classify_response(response: dict) -> str:
    if response.get("shed"):
        return "shed"
    if response.get("ok"):
        return "ok_complete" if response.get("complete", True) else "ok_partial"
    error = response.get("error")
    if isinstance(error, dict) and error.get("code"):
        return f"error:{error['code']}"
    return "malformed"


def _check_phase_sums(
    host: str, http_port: int, violations: list[str], *, sample: int = 40
) -> int:
    """Fetch recent traces and verify phase durations sum to elapsed."""
    status, body = http_get(host, http_port, "/debug/requests")
    if status != 200:
        violations.append(f"/debug/requests answered HTTP {status}")
        return 0
    listing = json.loads(body)
    checked = 0
    for summary in listing.get("recent", [])[:sample]:
        trace = fetch_trace(host, http_port, summary["trace_id"])
        if trace is None or trace.get("elapsed_ms") is None:
            continue
        phase_sum = sum(trace.get("phases", {}).values())
        elapsed = trace["elapsed_ms"]
        if abs(phase_sum - elapsed) > 1.0:
            violations.append(
                f"trace {trace['trace_id']}: phases sum to {phase_sum}ms "
                f"but elapsed is {elapsed}ms"
            )
        checked += 1
    return checked


def _check_metrics_exposition(
    host: str, http_port: int, violations: list[str]
) -> None:
    from ..obs.prometheus import validate_exposition

    status, body = http_get(host, http_port, "/metrics")
    if status != 200:
        violations.append(f"/metrics answered HTTP {status}")
        return
    problems = validate_exposition(body)
    for problem in problems[:5]:
        violations.append(f"/metrics exposition: {problem}")


def _build_cache_probe() -> SoakWorkload:
    """The registry-cache probe over a database the traffic loop never
    touches (constant prefix ``p``): a complete model legitimately
    cached by earlier full-budget traffic would otherwise satisfy the
    truncated query and mask the invariant."""
    from ..core.parser import parse_theory

    database = chain_database("E", PROBE_CHAIN, prefix="p")
    outcome = try_certain_answers(
        Query(parse_theory(PROBE_THEORY), PROBE_OUTPUT),
        database,
        budget=ChaseBudget(max_steps=500_000),
    )
    assert outcome.complete
    return SoakWorkload(
        name="cache-probe",
        theory_text=PROBE_THEORY,
        database_text=_render_database(database),
        output=PROBE_OUTPUT,
        ground_truth=_wire_answers(outcome.value),
    )


def _check_registry_cache(
    client: ServiceClient, violations: list[str]
) -> dict:
    """Truncated queries then a full query over the same fresh (theory,
    database): the final answer must be complete and equal to ground
    truth — a registry that cached a truncated model fails here.  The
    truncated query runs once per worker-ish (twice) so a buggy cache
    would be seeded wherever the full query lands."""
    probe = _build_cache_probe()
    result: dict = {}
    for attempt in range(2):
        truncated = client.query(
            probe.output,
            theory_text=probe.theory_text,
            database=probe.database_text,
            strategy="chase",
            max_steps=PROBE_TRUNCATED_STEPS,
            request_id=f"soak-probe-truncated-{attempt}",
        )
        result["truncated"] = _classify_response(truncated)
        if truncated.get("ok") and truncated.get("complete"):
            violations.append(
                "registry probe: truncated-budget query reported complete "
                f"(max_steps={PROBE_TRUNCATED_STEPS} should exhaust)"
            )
        if truncated.get("ok"):
            partial = {tuple(answer) for answer in truncated.get("answers", [])}
            truth = {tuple(answer) for answer in probe.ground_truth}
            if not partial <= truth:
                violations.append(
                    "registry probe: truncated answers are unsound"
                )
    full = client.query(
        probe.output,
        theory_text=probe.theory_text,
        database=probe.database_text,
        strategy="chase",
        request_id="soak-probe-full",
    )
    result["full"] = _classify_response(full)
    if not full.get("ok") or not full.get("complete"):
        violations.append(
            "registry probe: full-budget query did not complete "
            f"({_classify_response(full)})"
        )
    elif full.get("answers") != probe.ground_truth:
        violations.append(
            "registry probe: full-budget answers differ from ground truth — "
            "the registry served a truncated cached model"
        )
    return result


def _check_clean_drain(
    proc: subprocess.Popen, host: str, http_port: int, violations: list[str]
) -> dict:
    """SIGTERM the spawned server: exit 0, no orphaned workers."""
    try:
        health = json.loads(http_get(host, http_port, "/healthz")[1])
        worker_pids = list(health.get("worker_pids", []))
    except Exception:
        worker_pids = []
    proc.send_signal(signal.SIGTERM)
    try:
        code = proc.wait(timeout=60)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait(timeout=10)
        violations.append("drain: server did not exit within 60s of SIGTERM")
        return {"exit_code": None, "orphans": worker_pids}
    if code != 0:
        violations.append(f"drain: server exited {code}, expected 0")
    orphans = []
    deadline = time.monotonic() + 10
    while time.monotonic() < deadline:
        orphans = []
        for pid in worker_pids:
            try:
                os.kill(pid, 0)
                orphans.append(pid)
            except (ProcessLookupError, PermissionError):
                pass
        if not orphans:
            break
        time.sleep(0.1)
    if orphans:
        violations.append(f"drain: orphaned worker processes {orphans}")
    return {"exit_code": code, "orphans": orphans}


# ----------------------------------------------------------------------
def run_soak(config: SoakConfig) -> dict:
    """Run one soak; returns the (JSON-serialisable) report.

    ``report["ok"]`` is ``True`` iff zero invariant violations."""
    worker_faults, transport_faults = config.split_faults()
    workloads = build_workloads(config.seed)
    schedule = ChaosSchedule(
        config.seed, faults=transport_faults, rate=config.fault_rate
    )
    violations: list[str] = []
    outcomes: dict[str, int] = {}
    issued = 0

    proc: Optional[subprocess.Popen] = None
    if config.connect is None:
        proc, port, http_port = _spawn_server(config)
    else:
        port, http_port = config.connect
        wait_until_ready(config.host, port, timeout=30)

    proxy = ChaosProxy(config.host, port, schedule, host=config.host)
    drain_result: dict = {"skipped": "externally managed server"}
    try:
        proxy_host, proxy_port = proxy.start()
        retry = RetryPolicy(
            attempts=5,
            base_delay_ms=10.0,
            max_delay_ms=250.0,
            budget_ms=8_000.0,
            rng=derive_rng(config.seed, "retry"),
        )
        client = ServiceClient(
            proxy_host, proxy_port, timeout=config.client_timeout, retry=retry
        )
        deadline = time.monotonic() + config.duration
        index = 0
        with client:
            while time.monotonic() < deadline:
                plan = plan_request(
                    config.seed,
                    index,
                    n_workloads=len(workloads),
                    worker_faults=worker_faults,
                    fault_rate=config.fault_rate,
                )
                index += 1
                issued += 1
                outcome = _issue(client, plan, workloads, violations)
                outcomes[outcome] = outcomes.get(outcome, 0) + 1

        # Invariant: every issued request reached exactly one terminal
        # outcome (structural — each loop iteration records exactly one).
        if sum(outcomes.values()) != issued:
            violations.append(
                f"terminal-outcome accounting: issued {issued} requests but "
                f"recorded {sum(outcomes.values())} outcomes"
            )

        # Post-traffic invariants run against the server directly (no
        # proxy): the checks themselves must not be chaos-distorted.
        direct = ServiceClient(
            config.host, port, timeout=30.0,
            retry=RetryPolicy(rng=derive_rng(config.seed, "direct")),
        )
        with direct:
            probe_result = _check_registry_cache(direct, violations)
            try:
                final_status = direct.status()
            except Exception as exc:  # noqa: BLE001 - report, don't crash
                final_status = {"error": str(exc)}
        traces_checked = _check_phase_sums(config.host, http_port, violations)
        _check_metrics_exposition(config.host, http_port, violations)
        if proc is not None:
            drain_result = _check_clean_drain(
                proc, config.host, http_port, violations
            )
    finally:
        proxy.stop()
        if proc is not None and proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)

    report = {
        "seed": config.seed,
        "duration_s": config.duration,
        "faults": sorted(config.faults),
        "fault_rate": config.fault_rate,
        "workers": config.workers,
        # Byte-for-byte reproducible sections: pure functions of the
        # seed + fault set, independent of timing and machine.
        "schedule": {
            "proxy": schedule.preview(PREVIEW_ENTRIES),
            "traffic": [
                plan_request(
                    config.seed, i,
                    n_workloads=len(workloads),
                    worker_faults=worker_faults,
                    fault_rate=config.fault_rate,
                )
                for i in range(PREVIEW_ENTRIES)
            ],
        },
        "requests": issued,
        "outcomes": dict(sorted(outcomes.items())),
        "proxy": {
            "exchanges": proxy.exchanges,
            "injected": dict(sorted(proxy.injected.items())),
        },
        "registry_probe": probe_result,
        "traces_checked": traces_checked,
        "drain": drain_result,
        "server": final_status,
        "violations": violations,
        "ok": not violations,
    }
    return report


def _issue(
    client: ServiceClient,
    plan: dict,
    workloads: list[SoakWorkload],
    violations: list[str],
) -> str:
    """Send one planned request; classify its terminal outcome and check
    answer soundness.  Returns the outcome label (exactly one per call —
    the structural half of the terminal-outcome invariant)."""
    request_id = f"soak-{plan['index']}"
    try:
        if plan["op"] == "ping":
            response = client.ping()
        elif plan["op"] == "status":
            response = client.status()
        elif plan["op"] == "register":
            workload = workloads[plan["workload"]]
            response = client.register(
                workload.theory_text, request_id=request_id
            )
        else:
            workload = workloads[plan["workload"]]
            response = client.query(
                workload.output,
                theory_text=workload.theory_text,
                database=workload.database_text,
                strategy="chase",
                timeout=5.0,
                request_id=request_id,
                inject=plan.get("inject"),
            )
    except ServiceUnavailable:
        return "unavailable"
    except TransportError:
        return "transport_error"
    except Exception as exc:  # noqa: BLE001 - anything untyped is a violation
        violations.append(
            f"request {request_id}: untyped client exception "
            f"{type(exc).__name__}: {exc}"
        )
        return "untyped_exception"
    if not isinstance(response, dict) or "ok" not in response:
        violations.append(f"request {request_id}: malformed terminal response")
        return "malformed"
    label = _classify_response(response)
    if label == "malformed":
        violations.append(
            f"request {request_id}: ok:false response without error code"
        )
    if plan["op"] == "query" and response.get("ok") and "inject" not in plan:
        workload = workloads[plan["workload"]]
        answers = {tuple(answer) for answer in response.get("answers", [])}
        truth = {tuple(answer) for answer in workload.ground_truth}
        if response.get("complete", True):
            if answers != truth:
                violations.append(
                    f"request {request_id}: complete answers differ from "
                    f"ground truth on {workload.name}"
                )
        elif not answers <= truth:
            violations.append(
                f"request {request_id}: partial answers are unsound on "
                f"{workload.name}"
            )
    return label
