"""Seeded TCP fault-injection proxy for the NDJSON query plane.

The proxy accepts client connections, opens one upstream connection per
client, and relays **exchanges** (one request line in, one response line
out — the service protocol's unit of work).  Before each exchange it
consults a :class:`ChaosSchedule` for a fault decision:

* ``reset``      — close the client connection with ``SO_LINGER 0``
  (an RST on the wire) before the request is forwarded;
* ``disconnect`` — forward the request, then drop the client without
  relaying any response (the ambiguous-failure case retries exist for);
* ``truncate``   — relay only a prefix of the response bytes, then
  close (a torn frame: the client must reject it, never parse it);
* ``delay:<ms>`` — hold the response for a bounded time, then relay it
  intact (latency without loss);
* ``stall``      — swallow the response and hold the connection open
  until ``stall_s`` passes (the client's socket timeout must fire).

Determinism is the whole point: decision ``i`` is a pure function of
``(seed, faults, rate, i)`` via SHA-256-derived RNGs (:func:`derive_rng`
— the builtin ``hash`` is salted per process and would silently break
replays), so the byte-level fault schedule of a soak run reproduces
exactly from its seed.  :meth:`ChaosSchedule.preview` renders the first
N decisions for the soak report.

The proxy is threads-and-sockets on purpose — it must keep working
while the asyncio server it fronts is the thing being tortured.
"""

from __future__ import annotations

import hashlib
import random
import socket
import struct
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Optional

from ..robustness.errors import InvalidRequestError

__all__ = [
    "PROXY_FAULT_ACTIONS",
    "ChaosDecision",
    "ChaosSchedule",
    "ChaosProxy",
    "derive_rng",
]

#: Transport fault actions the proxy can inject, in severity order.
PROXY_FAULT_ACTIONS = ("delay", "truncate", "stall", "reset", "disconnect")

#: Upper bound on one relayed line; matches the protocol's frame cap.
_MAX_LINE = 8 * 1024 * 1024 + 2


def derive_rng(seed: int, *scope: object) -> random.Random:
    """A :class:`random.Random` keyed on ``(seed, *scope)`` via SHA-256.

    ``random.Random("7:traffic")`` would use the *salted* builtin string
    hash — different across processes, silently breaking replay — so
    every chaos RNG is derived through a stable digest instead."""
    text = "repro-chaos:" + ":".join(str(part) for part in (seed, *scope))
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


@dataclass(frozen=True)
class ChaosDecision:
    """One exchange's fate: pass through clean, or one injected fault."""

    index: int
    action: str  # "none" or a member of PROXY_FAULT_ACTIONS
    delay_ms: float = 0.0

    def to_dict(self) -> dict:
        payload = {"index": self.index, "action": self.action}
        if self.action == "delay":
            payload["delay_ms"] = self.delay_ms
        return payload


class ChaosSchedule:
    """The deterministic fault plan: ``decision(i)`` is pure in
    ``(seed, faults, rate, i)`` and therefore identical across runs,
    processes, and machines for the same parameters."""

    def __init__(
        self,
        seed: int,
        faults: tuple[str, ...] = PROXY_FAULT_ACTIONS,
        rate: float = 0.2,
        delay_range_ms: tuple[float, float] = (25.0, 250.0),
        stall_s: float = 3.0,
    ) -> None:
        for fault in faults:
            if fault not in PROXY_FAULT_ACTIONS:
                raise InvalidRequestError(
                    f"unknown proxy fault {fault!r}; expected members of "
                    f"{PROXY_FAULT_ACTIONS}"
                )
        if not 0.0 <= rate <= 1.0:
            raise InvalidRequestError("fault rate must be within [0, 1]")
        if delay_range_ms[0] < 0 or delay_range_ms[1] < delay_range_ms[0]:
            raise InvalidRequestError("delay_range_ms must be 0 <= lo <= hi")
        self.seed = seed
        self.faults = tuple(faults)
        self.rate = rate
        self.delay_range_ms = delay_range_ms
        self.stall_s = stall_s

    def decision(self, index: int) -> ChaosDecision:
        if not self.faults:
            return ChaosDecision(index=index, action="none")
        rng = derive_rng(self.seed, "proxy", index)
        if rng.random() >= self.rate:
            return ChaosDecision(index=index, action="none")
        action = self.faults[rng.randrange(len(self.faults))]
        delay_ms = 0.0
        if action == "delay":
            low, high = self.delay_range_ms
            delay_ms = round(rng.uniform(low, high), 3)
        return ChaosDecision(index=index, action=action, delay_ms=delay_ms)

    def preview(self, count: int) -> list[dict]:
        """The first ``count`` decisions, rendered for the soak report —
        the byte-for-byte reproducibility witness of a seeded run."""
        return [self.decision(index).to_dict() for index in range(count)]


class ChaosProxy:
    """A line-exchange TCP proxy applying a :class:`ChaosSchedule`.

    ``start()`` binds (port 0 → ephemeral) and returns the listen
    address; every client connection is served by its own daemon thread
    with a dedicated upstream connection.  Counters (``exchanges``,
    ``injected`` per action) and a bounded ``events`` ring record what
    was actually injected, for the soak report."""

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        schedule: ChaosSchedule,
        host: str = "127.0.0.1",
        port: int = 0,
        io_timeout: float = 30.0,
    ) -> None:
        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self.schedule = schedule
        self.host = host
        self.port = port
        self.io_timeout = io_timeout
        self.exchanges = 0
        self.injected: dict[str, int] = {}
        self.events: deque[dict] = deque(maxlen=512)
        self._counter_lock = threading.Lock()
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._stopping = threading.Event()
        self._open_sockets: set[socket.socket] = set()

    # ------------------------------------------------------------------
    def start(self) -> tuple[str, int]:
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(64)
        self._listener = listener
        self.host, self.port = listener.getsockname()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-chaos-accept", daemon=True
        )
        self._accept_thread.start()
        return self.host, self.port

    def stop(self) -> None:
        self._stopping.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._counter_lock:
            stragglers = list(self._open_sockets)
        for sock in stragglers:
            try:
                sock.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(2.0)

    def __enter__(self) -> "ChaosProxy":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def _next_decision(self) -> ChaosDecision:
        with self._counter_lock:
            index = self.exchanges
            self.exchanges += 1
        decision = self.schedule.decision(index)
        if decision.action != "none":
            with self._counter_lock:
                self.injected[decision.action] = (
                    self.injected.get(decision.action, 0) + 1
                )
                self.events.append(decision.to_dict())
        return decision

    def _track(self, sock: socket.socket) -> None:
        with self._counter_lock:
            self._open_sockets.add(sock)

    def _untrack(self, sock: socket.socket) -> None:
        with self._counter_lock:
            self._open_sockets.discard(sock)

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stopping.is_set():
            try:
                client, _ = self._listener.accept()
            except OSError:
                return
            self._track(client)
            threading.Thread(
                target=self._serve_client,
                args=(client,),
                name="repro-chaos-conn",
                daemon=True,
            ).start()

    # ------------------------------------------------------------------
    @staticmethod
    def _hard_close(sock: socket.socket) -> None:
        """Close with ``SO_LINGER 0`` → RST, the genuine article of a
        "connection reset by peer"."""
        try:
            sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
            )
        except OSError:
            pass
        try:
            sock.close()
        except OSError:
            pass

    def _serve_client(self, client: socket.socket) -> None:
        upstream: Optional[socket.socket] = None
        try:
            client.settimeout(self.io_timeout)
            upstream = socket.create_connection(
                (self.upstream_host, self.upstream_port),
                timeout=self.io_timeout,
            )
            self._track(upstream)
            client_file = client.makefile("rb")
            upstream_file = upstream.makefile("rb")
            while not self._stopping.is_set():
                request = client_file.readline(_MAX_LINE)
                if not request:
                    return
                decision = self._next_decision()
                if decision.action == "reset":
                    self._untrack(client)
                    self._hard_close(client)
                    client = None  # type: ignore[assignment]
                    return
                upstream.sendall(request)
                if decision.action == "disconnect":
                    # Ambiguity by construction: the server acts, the
                    # client never learns.  Idempotent-op retries exist
                    # precisely for this exchange.
                    return
                response = upstream_file.readline(_MAX_LINE)
                if not response:
                    return
                if decision.action == "truncate":
                    cut = max(1, len(response) // 2)
                    client.sendall(response[:cut])
                    return
                if decision.action == "stall":
                    time.sleep(self.schedule.stall_s)
                    return
                if decision.action == "delay":
                    time.sleep(decision.delay_ms / 1e3)
                client.sendall(response)
        except (OSError, ValueError):
            pass
        finally:
            for sock in (client, upstream):
                if sock is None:
                    continue
                self._untrack(sock)
                try:
                    sock.close()
                except OSError:
                    pass
