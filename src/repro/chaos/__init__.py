"""repro.chaos — deterministic fault injection and soak testing.

The service package (:mod:`repro.service`) claims a failure-model
contract (DESIGN.md §13): structured errors, shed responses with back-off
hints, crash recovery that never loses a request, a drain that exits
clean.  This package is the machinery that *checks* those claims under
adversity instead of trusting them:

``proxy``
    A seeded TCP fault-injection proxy that sits between a client and a
    running server and injects transport faults — connection resets,
    response delays, frame truncation, stalls, mid-exchange disconnects
    — on a schedule that is a **pure function of the seed**, so every
    chaotic run is replayable bit-for-bit.

``soak``
    The soak harness behind ``repro soak``: replays seeded mixed
    register/query/status traffic through the proxy against a live
    ``repro serve`` (spawned with ``--allow-faults`` so worker-side
    crash faults ride along), and checks end-to-end invariants —
    exactly one terminal outcome per request, sound partial answers,
    consistent trace phase sums, a clean drain with no orphan workers,
    and a registry that never caches a truncated model.

Everything here is stdlib-only and driven by :class:`random.Random`
instances derived via SHA-256 (never the salted builtin ``hash``), so a
schedule reproduces across processes and Python versions.
"""

from .proxy import (
    PROXY_FAULT_ACTIONS,
    ChaosDecision,
    ChaosProxy,
    ChaosSchedule,
    derive_rng,
)
from .soak import SoakConfig, run_soak

__all__ = [
    "PROXY_FAULT_ACTIONS",
    "ChaosDecision",
    "ChaosProxy",
    "ChaosSchedule",
    "derive_rng",
    "SoakConfig",
    "run_soak",
]
